"""The simlint command line.

Usage::

    python -m repro.analysis.lint src tests benchmarks
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --format json src

Exit status 0 when every file is clean (or every finding is
allowlisted with a reason), 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.lint.framework import Finding, Linter
from repro.analysis.lint.registry import default_rules

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


def iter_python_files(paths: "list[str]") -> "list[pathlib.Path]":
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    files.append(sub)
        else:
            raise FileNotFoundError(raw)
    return files


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="simlint: determinism static analysis for the simulation stack",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code} {rule.name:16s} {rule.description}")
        return 0
    if not args.paths:
        print("error: no paths given (try: src tests benchmarks)", file=sys.stderr)
        return 2
    known = {rule.name for rule in rules}
    for option in ("select", "ignore"):
        chosen = getattr(args, option)
        if chosen:
            bad = set(chosen.split(",")) - known
            if bad:
                print(f"error: unknown rule(s) {sorted(bad)}", file=sys.stderr)
                return 2
    if args.select:
        selected = set(args.select.split(","))
        rules = [rule for rule in rules if rule.name in selected]
    if args.ignore:
        ignored = set(args.ignore.split(","))
        rules = [rule for rule in rules if rule.name not in ignored]

    try:
        files = iter_python_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc.args[0]}", file=sys.stderr)
        return 2
    linter = Linter(rules)
    findings: list[Finding] = []
    for path in files:
        findings.extend(linter.lint_file(path))

    if args.format == "json":
        print(
            json.dumps(
                [finding.__dict__ for finding in findings],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        summary = (
            f"simlint: {len(findings)} finding(s) in {len(files)} file(s)"
            if findings
            else f"simlint: {len(files)} file(s) clean"
        )
        print(summary)
    return 1 if findings else 0
