"""The simlint rule framework.

A :class:`Rule` inspects AST nodes and reports :class:`Finding`s.  The
:class:`Linter` parses each file once, walks the tree once, and
dispatches every node to the rules that registered interest in its
type — so adding a rule never adds a file pass.

Findings are suppressed by an explicit allowlist comment on the
offending line (see :mod:`repro.analysis.lint.allowlist`); a
suppression must carry a reason, because the point of the pass is that
every escape from the determinism contract is *justified*, not merely
silenced.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing

from repro.analysis.lint.allowlist import Allowlist, BAD_ALLOW_RULE

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable, Sequence


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str  # short rule name, e.g. "bare-rng"
    code: str  # stable id, e.g. "SIM001"
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.rule}: {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`name` (the allowlist key), :attr:`code`, and
    :attr:`node_types`, and implement :meth:`check` returning zero or
    more ``(node, message)`` pairs.
    """

    name: str = ""
    code: str = ""
    description: str = ""
    # AST node classes this rule wants to see.
    node_types: tuple = ()

    def check(
        self, node: ast.AST, ctx: "FileContext"
    ) -> "Iterable[tuple[ast.AST, str]]":
        raise NotImplementedError

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether the rule runs on this file at all (default: yes)."""
        return True


@dataclasses.dataclass
class FileContext:
    """Per-file state shared by every rule during one walk."""

    path: str  # as given on the command line
    posix_path: str  # normalized with forward slashes, for exemption matching
    tree: ast.Module
    allowlist: Allowlist
    # Parent links let rules look outward (e.g. "is this call the
    # iterable of a for loop?").  Built once per file.
    parents: dict[ast.AST, ast.AST] = dataclasses.field(default_factory=dict)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)


def _link_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


class Linter:
    """Runs a set of rules over files and collects findings."""

    def __init__(self, rules: "Sequence[Rule]"):
        self.rules = list(rules)
        by_type: dict[type, list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                by_type.setdefault(node_type, []).append(rule)
        self._by_type = by_type

    def lint_source(self, path: str, source: str) -> list[Finding]:
        """Lint one file's text; returns findings (allowlist applied)."""
        posix = pathlib.PurePath(path).as_posix()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax-error",
                    code="SIM999",
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        allowlist = Allowlist.from_source(source)
        ctx = FileContext(
            path=path, posix_path=posix, tree=tree, allowlist=allowlist
        )
        ctx.parents = _link_parents(tree)
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        active_types = {
            node_type: [r for r in rules if r in active]
            for node_type, rules in self._by_type.items()
        }
        findings: list[Finding] = []
        for node in ast.walk(tree):
            for rule in active_types.get(type(node), ()):
                for flagged, message in rule.check(node, ctx):
                    line = getattr(flagged, "lineno", 1)
                    if allowlist.allows(rule.name, line):
                        continue
                    findings.append(
                        Finding(
                            path=path,
                            line=line,
                            col=getattr(flagged, "col_offset", 0),
                            rule=rule.name,
                            code=rule.code,
                            message=message,
                        )
                    )
        # Malformed/unknown suppressions are findings themselves: a
        # silent bad allow would otherwise *look* like a justification.
        known = {rule.name for rule in self.rules}
        for problem in allowlist.problems(known):
            findings.append(
                Finding(
                    path=path,
                    line=problem.line,
                    col=0,
                    rule=BAD_ALLOW_RULE,
                    code="SIM000",
                    message=problem.message,
                )
            )
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_file(self, path: pathlib.Path) -> list[Finding]:
        return self.lint_source(str(path), path.read_text(encoding="utf-8"))
