"""The default simlint rule set.

Kept apart from the CLI so tests (and future pre-commit hooks) can
instantiate the exact production rule set without argument parsing.
"""

from __future__ import annotations

from repro.analysis.lint.framework import Rule
from repro.analysis.lint.rules_entropy import (
    BareRngRule,
    OsEntropyRule,
    RealSleepRule,
    WallClockRule,
)
from repro.analysis.lint.rules_order import (
    DeadYieldRule,
    IdOrderingRule,
    SetIterationRule,
    UnboundedAccumRule,
)


def default_rules() -> "list[Rule]":
    """One fresh instance of every production rule, in code order."""
    return [
        BareRngRule(),
        WallClockRule(),
        RealSleepRule(),
        OsEntropyRule(),
        SetIterationRule(),
        IdOrderingRule(),
        UnboundedAccumRule(),
        DeadYieldRule(),
    ]
