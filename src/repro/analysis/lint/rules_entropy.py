"""Rules against nondeterministic inputs: RNG, wall clock, OS entropy.

The simulation's reproducibility contract is that *all* randomness
flows from :class:`repro.sim.rng.RngStreams` (named, seed-stable
streams) and *all* time flows from ``engine.now``.  These rules catch
the two classic contract escapes — bare ``random.*`` and host-clock
reads — plus OS entropy sources that no seed can ever pin down.
"""

from __future__ import annotations

import ast
import typing

from repro.analysis.lint.framework import FileContext, Rule

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable


def _dotted(node: ast.AST) -> str | None:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class BareRngRule(Rule):
    """SIM001: randomness that bypasses the named-stream discipline.

    ``random.Random(seed)`` constructed ad hoc — or module-level
    ``random.random()`` / ``random.choice()`` / … — is seed-stable only
    by accident and couples every caller to one global sequence:
    adding a draw anywhere perturbs every later draw.  Components must
    pull a stream from ``RngStreams`` (``engine.rng.stream("name")``)
    so their sequences are independent and named.
    """

    name = "rng"
    code = "SIM001"
    description = (
        "bare random.Random / module-level random.* call; draw from a "
        "named RngStreams stream instead"
    )
    node_types = (ast.Call, ast.ImportFrom)

    # The stream factory itself is the one sanctioned constructor site.
    EXEMPT_SUFFIXES = ("sim/rng.py",)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.posix_path.endswith(self.EXEMPT_SUFFIXES)

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield (
                    node,
                    "import of bare random names; use "
                    "engine.rng.stream('<component>') (repro.sim.rng.RngStreams)",
                )
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted == "random.Random" or (
            dotted.startswith("random.") and dotted.count(".") == 1
        ):
            if dotted == "random.SystemRandom":
                return  # SIM004's finding; do not double-report
            yield (
                node,
                f"{dotted}() bypasses RngStreams; use "
                "engine.rng.stream('<component>') or justify with "
                "'# simlint: allow-rng -- <reason>'",
            )


class WallClockRule(Rule):
    """SIM002: host wall-clock reads inside simulated logic.

    Simulated components must read ``engine.now``; a host-clock value
    leaking into model state makes two identical runs diverge.
    """

    name = "wall-clock"
    code = "SIM002"
    description = "host clock read (time.time / datetime.now / …); use engine.now"
    node_types = (ast.Call,)

    CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "date.today",
        }
    )

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        dotted = _dotted(node.func)
        if dotted in self.CLOCK_CALLS:
            yield (
                node,
                f"{dotted}() reads the host clock; simulated time is "
                "engine.now (harness-side measurement needs "
                "'# simlint: allow-wall-clock -- <reason>')",
            )


class RealSleepRule(Rule):
    """SIM003: blocking the host thread instead of yielding sim time."""

    name = "real-sleep"
    code = "SIM003"
    description = "time.sleep blocks the host; yield engine.timeout(delay) instead"
    node_types = (ast.Call, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "sleep" for alias in node.names
            ):
                yield (node, "importing time.sleep; yield engine.timeout(delay) instead")
            return
        if _dotted(node.func) == "time.sleep":
            yield (
                node,
                "time.sleep() stalls the host thread; simulated delay is "
                "'yield engine.timeout(delay)'",
            )


class OsEntropyRule(Rule):
    """SIM004: OS entropy no seed can reproduce."""

    name = "entropy"
    code = "SIM004"
    description = "os.urandom / uuid1 / uuid4 / secrets.* are unseedable"
    node_types = (ast.Call, ast.ImportFrom)

    ENTROPY_CALLS = frozenset(
        {"os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom"}
    )

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if isinstance(node, ast.ImportFrom):
            if node.module == "secrets" and node.level == 0:
                yield (node, "the secrets module is OS entropy; no seed reproduces it")
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self.ENTROPY_CALLS or dotted.startswith("secrets."):
            yield (
                node,
                f"{dotted}() draws OS entropy; derive ids/values from a "
                "named RngStreams stream so runs replay bit-identically",
            )
