"""simlint: determinism static analysis for the simulation stack.

Run as ``python -m repro.analysis.lint src tests benchmarks``.

The pass enforces the two contracts the evaluation's
apples-to-apples claim rests on — randomness only through named
:class:`~repro.sim.rng.RngStreams` streams, time only through
``engine.now`` — plus ordering/resource hygiene (no hash-order
iteration feeding decisions, no ``id()`` ordering, no unbounded sample
lists, no events yielded into the void).  Escapes are justified in
place with ``# simlint: allow-<rule> -- <reason>``.
"""

from repro.analysis.lint.allowlist import Allowlist
from repro.analysis.lint.framework import FileContext, Finding, Linter, Rule
from repro.analysis.lint.registry import default_rules

__all__ = [
    "Allowlist",
    "FileContext",
    "Finding",
    "Linter",
    "Rule",
    "default_rules",
]
