"""Allowlist comments: justified exemptions from simlint rules.

Syntax, on the flagged line or in a comment block directly above it
(a directive that opens a comment block covers the whole block plus
the first code line after it, so justifications can wrap)::

    # simlint: allow-<rule> -- <reason>
    # simlint: allow-rng, allow-wall-clock -- harness-local measurement

The reason is mandatory.  An allow without one — or naming a rule that
does not exist — is itself reported (``SIM000 bad-allow``), so a typo
cannot silently suppress nothing while appearing to justify something.

Comments are found with :mod:`tokenize`, not a regex over raw lines,
so ``# simlint:`` inside a string literal is never misread as a
directive.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize

BAD_ALLOW_RULE = "bad-allow"

_DIRECTIVE = re.compile(r"#\s*simlint:\s*(?P<body>.*)$")
_ALLOW = re.compile(r"allow-(?P<rule>[a-z0-9-]+)")


@dataclasses.dataclass(frozen=True)
class AllowProblem:
    """A malformed or unknown suppression directive."""

    line: int
    message: str


@dataclasses.dataclass(frozen=True)
class _Directive:
    line: int
    rules: tuple
    reason: str
    raw: str


class Allowlist:
    """Per-file map of line -> allowed rule names."""

    def __init__(
        self, directives: list[_Directive], comment_lines: frozenset = frozenset()
    ):
        self._directives = directives
        self._by_line: dict[int, set] = {}
        for directive in directives:
            if not directive.reason:
                continue  # reported via problems(); grants nothing
            # A directive covers its own line; when it opens a comment
            # block, coverage extends through the block to the first
            # code line after it, so multi-line justifications work.
            line = directive.line
            self._by_line.setdefault(line, set()).update(directive.rules)
            while line + 1 in comment_lines:
                line += 1
                self._by_line.setdefault(line, set()).update(directive.rules)
            self._by_line.setdefault(line + 1, set()).update(directive.rules)

    @classmethod
    def from_source(cls, source: str) -> "Allowlist":
        directives: list[_Directive] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenizeError, SyntaxError, IndentationError):
            comments = []
        for line, comment in comments:
            match = _DIRECTIVE.search(comment)
            if match is None:
                continue
            body = match.group("body").strip()
            if "--" in body:
                allows_part, _, reason = body.partition("--")
                reason = reason.strip()
            else:
                allows_part, reason = body, ""
            rules = tuple(m.group("rule") for m in _ALLOW.finditer(allows_part))
            directives.append(
                _Directive(line=line, rules=rules, reason=reason, raw=body)
            )
        return cls(directives, frozenset(line for line, _ in comments))

    def allows(self, rule: str, line: int) -> bool:
        return rule in self._by_line.get(line, ())

    def problems(self, known_rules: set) -> list[AllowProblem]:
        problems = []
        for directive in self._directives:
            if not directive.rules:
                problems.append(
                    AllowProblem(
                        directive.line,
                        f"directive has no allow-<rule> clause: {directive.raw!r}",
                    )
                )
                continue
            if not directive.reason:
                problems.append(
                    AllowProblem(
                        directive.line,
                        "allow without a reason; append '-- <why this is safe>'",
                    )
                )
            for rule in directive.rules:
                if rule not in known_rules:
                    problems.append(
                        AllowProblem(
                            directive.line,
                            f"allow names unknown rule {rule!r}",
                        )
                    )
        return problems
