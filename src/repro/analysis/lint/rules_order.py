"""Rules against ordering hazards and resource-shaped bugs.

Same-seed reproducibility survives only while every iteration the
model *acts on* has a defined order and every accumulated statistic
has bounded memory.  These rules catch hash-order iteration,
``id()``-derived ordering, unbounded sample lists, and events yielded
into the void.
"""

from __future__ import annotations

import ast
import re
import typing

from repro.analysis.lint.framework import FileContext, Rule

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable

# Calls whose first argument's iteration order becomes observable.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` is statically known to produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # set-algebra methods returning new sets
        return node.func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference") and _is_set_expr(
            node.func.value
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                            ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationRule(Rule):
    """SIM005: iterating a set where the order becomes behavior.

    Set iteration order depends on insertion history and (for strings)
    the per-process hash seed.  A scheduling or placement loop driven
    by it is a run-to-run race; ``sorted(...)`` makes the order part of
    the model.
    """

    name = "set-iteration"
    code = "SIM005"
    description = "iteration over a set expression; wrap in sorted() for stable order"
    node_types = (ast.For, ast.comprehension, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                yield (
                    node.iter,
                    "for-loop over a set: iteration order is hash/insertion "
                    "dependent; iterate sorted(...) so order is part of the model",
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                yield (
                    node.iter,
                    "comprehension over a set: order is hash/insertion "
                    "dependent; use sorted(...)",
                )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield (
                    node,
                    f"{node.func.id}() over a set observes hash order; "
                    "use sorted(...)",
                )


class IdOrderingRule(Rule):
    """SIM006: ``id()`` leaking allocation addresses into model state.

    ``id()`` values vary between runs and interpreters; any ordering,
    keying, or hashing built on them is irreproducible by construction.
    Key by a stable identifier (name, index, slot) instead.
    """

    name = "id-ordering"
    code = "SIM006"
    description = "id() is allocation-order dependent; key by stable identifiers"
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield (
                node,
                "id() values differ between runs; order/key by a stable "
                "identifier (name, slot, sequence number) instead",
            )


_ACCUM_NAME = re.compile(r"(latenc|sample|duration)|_ns$")


class UnboundedAccumRule(Rule):
    """SIM007: per-observation float lists that grow with run length.

    A plain ``latencies = []`` accumulator is O(run length) memory and
    its late percentiles depend on float summation order under any
    refactor.  :class:`repro.analysis.ReservoirSample` holds exact
    count/mean/max and seeded bounded-memory percentiles — drop-in for
    append/len/iterate.
    """

    name = "unbounded-accum"
    code = "SIM007"
    description = "unbounded sample list; use analysis.ReservoirSample"
    node_types = (ast.Assign, ast.AnnAssign)

    # The reservoir implementation's own internal sample list.
    EXEMPT_SUFFIXES = ("analysis/stats.py",)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.posix_path.endswith(self.EXEMPT_SUFFIXES)

    @staticmethod
    def _is_bare_list(value: ast.AST | None) -> bool:
        if isinstance(value, ast.List) and not value.elts:
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
            and not value.args
        ):
            return True
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        if not self._is_bare_list(value):
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name is not None and _ACCUM_NAME.search(name):
                yield (
                    target,
                    f"{name!r} looks like an unbounded per-observation "
                    "accumulator; use analysis.ReservoirSample (bounded "
                    "memory, seeded percentiles)",
                )


class DeadYieldRule(Rule):
    """SIM008: yielding a freshly made bare event nobody can trigger.

    ``yield engine.event()`` constructs an event whose only reference
    is the waiting process itself — no other party can ever call
    ``succeed()`` on it, so the process sleeps forever (and a bare
    ``run()`` silently strands it).
    """

    name = "dead-yield"
    code = "SIM008"
    description = "yield of an unreferenced fresh Event; it can never trigger"
    node_types = (ast.Yield,)

    def check(self, node: ast.AST, ctx: FileContext) -> "Iterable[tuple[ast.AST, str]]":
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        fresh_event = (
            isinstance(func, ast.Attribute) and func.attr == "event"
        ) or (isinstance(func, ast.Name) and func.id == "Event")
        if fresh_event:
            yield (
                value,
                "yielded event is referenced only by this process; nothing "
                "can ever succeed() it, so the process is stranded — keep a "
                "reference where a producer can trigger it",
            )
