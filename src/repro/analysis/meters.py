"""Throughput measurement over simulated time windows."""

from __future__ import annotations

from repro.sim import Engine
from repro.sim.units import SEC


class ThroughputMeter:
    """Counts completions; reports rates over the measured window.

    Supports a warm-up boundary so saturation measurements exclude the
    pipeline fill transient.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.count = 0
        self.warm_count = 0
        self._start = engine.now
        self._warm_start: float | None = None

    def record(self) -> None:
        self.count += 1
        if self._warm_start is not None:
            self.warm_count += 1

    def record_bulk(self, n: int) -> None:
        """Credit ``n`` completions at once (fluid fast-forward windows)."""
        self.count += n
        if self._warm_start is not None:
            self.warm_count += n

    def start_measurement(self) -> None:
        """Mark the end of warm-up; rates report from this instant."""
        self._warm_start = self.engine.now
        self.warm_count = 0

    @property
    def window_ns(self) -> float:
        start = self._warm_start if self._warm_start is not None else self._start
        return max(self.engine.now - start, 1e-9)

    @property
    def per_second(self) -> float:
        counted = self.warm_count if self._warm_start is not None else self.count
        return counted * SEC / self.window_ns
