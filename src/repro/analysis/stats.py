"""Latency statistics: percentiles and CDFs, paper-style."""

from __future__ import annotations

import dataclasses
import math
import typing


def percentile(samples: typing.Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile; ``pct`` in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def cdf_points(
    samples: typing.Sequence[float], points: int = 100
) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    result = []
    for i in range(1, points + 1):
        frac = i / points
        index = min(int(frac * len(ordered)) - 1, len(ordered) - 1)
        result.append((ordered[max(index, 0)], frac))
    return result


@dataclasses.dataclass
class LatencyStats:
    """Summary of a latency sample set (ns)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    max: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """The all-zero summary of zero samples.

        For windows that legitimately completed nothing (e.g. an
        all-outage open-loop run that shed every arrival) — callers
        that consider zero samples a bug should use
        :meth:`from_samples`, which raises.
        """
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, p999=0.0, max=0.0)

    @classmethod
    def from_samples(cls, samples: typing.Sequence[float]) -> "LatencyStats":
        if not samples:
            raise ValueError("no samples")
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            p999=percentile(samples, 99.9),
            max=max(samples),
        )

    def scaled(self, factor: float) -> "LatencyStats":
        return LatencyStats(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            p999=self.p999 * factor,
            max=self.max * factor,
        )
