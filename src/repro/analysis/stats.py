"""Latency statistics: percentiles, CDFs, and bounded-memory samples."""

from __future__ import annotations

import collections.abc
import dataclasses
import math
import random


def percentile(samples: collections.abc.Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile; ``pct`` in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def cdf_points(
    samples: collections.abc.Sequence[float], points: int = 100
) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    result = []
    for i in range(1, points + 1):
        frac = i / points
        index = min(int(frac * len(ordered)) - 1, len(ordered) - 1)
        result.append((ordered[max(index, 0)], frac))
    return result


@dataclasses.dataclass
class LatencyStats:
    """Summary of a latency sample set (ns)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    max: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """The all-zero summary of zero samples.

        For windows that legitimately completed nothing (e.g. an
        all-outage open-loop run that shed every arrival) — callers
        that consider zero samples a bug should use
        :meth:`from_samples`, which raises.
        """
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, p999=0.0, max=0.0)

    @classmethod
    def from_samples(cls, samples: collections.abc.Sequence[float]) -> "LatencyStats":
        if not samples:
            raise ValueError("no samples")
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            p999=percentile(samples, 99.9),
            max=max(samples),
        )

    def scaled(self, factor: float) -> "LatencyStats":
        return LatencyStats(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            p999=self.p999 * factor,
            max=self.max * factor,
        )

    def to_dict(self) -> dict:
        """Canonical JSON form (stable keys, plain numbers)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


class ReservoirSample:
    """Bounded-memory latency accumulator (Vitter's Algorithm R).

    Count, mean, and max are exact over every observation; percentiles
    are computed from a uniform random sample of at most ``capacity``
    values, so memory stays flat no matter how many latencies a run
    records.  Below capacity the reservoir holds every observation in
    arrival order and all statistics are exact.

    The replacement RNG is private and seeded at construction, so two
    same-seed simulations produce identical quantiles.

    Supports enough of the list protocol (``append``, ``len``,
    iteration, indexing, ``==`` against a list, ``clear``) to drop in
    where an unbounded ``latencies_ns`` list used to live.  ``len()``
    returns the *exact observation count* — callers that need the
    sample size should use ``sample_size``.
    """

    __slots__ = ("capacity", "count", "total", "_max", "_sample", "_seed", "_rng")

    def __init__(self, capacity: int = 100_000, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._max = 0.0
        self._sample: list[float] = []
        self._seed = seed
        # simlint: allow-rng -- the construction-time seed IS the API:
        # the reservoir is engine-free and clear() must restore the
        # exact replacement stream.
        self._rng = random.Random(seed)

    # -- accumulation --------------------------------------------------

    def append(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        sample = self._sample
        if len(sample) < self.capacity:
            sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                sample[slot] = value

    def extend(self, values: collections.abc.Iterable[float]) -> None:
        for value in values:
            self.append(value)

    def merge_analytic(
        self,
        n: int,
        mean_value: float,
        draw: collections.abc.Callable[[random.Random], float] | None = None,
    ) -> None:
        """Bulk-merge ``n`` analytically credited observations.

        Fluid fast-forward credits whole windows of completions in one
        step; appending them one by one would defeat the point.  Count
        and total update exactly.  Below capacity each merged value is
        materialized (``draw(rng)`` per value, or ``mean_value``
        without a draw), so small runs stay exact.  At capacity the
        retained sample receives the *expected* number of Algorithm-R
        slot replacements for ``n`` sequential appends — ``capacity *
        ln(count_after / count_before)``, probabilistically rounded on
        the reservoir's private stream — so quantiles track the merged
        distribution while the merge stays O(capacity), not O(n).
        ``max`` reflects only materialized values (plus ``mean_value``
        itself without a draw): an analytic merge cannot know the
        extreme of draws it never made.
        """
        if n < 0:
            raise ValueError(f"merge size must be >= 0, got {n}")
        if n == 0:
            return
        sample = self._sample
        capacity = self.capacity
        rng = self._rng
        before = self.count
        self.count = before + n
        self.total += mean_value * n
        filled = 0
        while len(sample) < capacity and filled < n:
            value = draw(rng) if draw is not None else mean_value
            if value > self._max:
                self._max = value
            sample.append(value)
            filled += 1
        leftover = n - filled
        if leftover > 0:
            # Append number j replaces a random slot with probability
            # capacity/j; the expectation over the merged range is the
            # harmonic sum, tightly approximated by its integral.
            start = before + filled
            expected = capacity * math.log((start + leftover) / start)
            replacements = int(expected)
            if rng.random() < expected - replacements:
                replacements += 1
            for _ in range(replacements):
                value = draw(rng) if draw is not None else mean_value
                if value > self._max:
                    self._max = value
                sample[rng.randrange(capacity)] = value
        if draw is None and mean_value > self._max:
            self._max = mean_value

    def clear(self) -> None:
        """Reset to the just-constructed state (RNG included)."""
        self.count = 0
        self.total = 0.0
        self._max = 0.0
        self._sample.clear()
        # simlint: allow-rng -- restores the constructor's stream exactly.
        self._rng = random.Random(self._seed)

    # -- list protocol --------------------------------------------------

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self) -> collections.abc.Iterator[float]:
        return iter(self._sample)

    def __getitem__(self, index):
        return self._sample[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReservoirSample):
            return self.count == other.count and self._sample == other._sample
        if isinstance(other, (list, tuple)):
            return self.count == len(other) and self._sample == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- statistics -----------------------------------------------------

    @property
    def sample_size(self) -> int:
        """Number of values retained for percentile estimation."""
        return len(self._sample)

    @property
    def mean(self) -> float:
        """Exact mean over all observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def max(self) -> float:
        """Exact maximum over all observations (0.0 when empty)."""
        return self._max

    def percentile(self, pct: float) -> float:
        """Percentile from the retained sample (exact below capacity)."""
        return percentile(self._sample, pct)

    def summary(self) -> LatencyStats:
        """Exact count/mean/max with sampled percentiles.

        Returns :meth:`LatencyStats.empty` for zero observations rather
        than raising, matching how run-level reports treat windows that
        completed nothing.
        """
        if self.count == 0:
            return LatencyStats.empty()
        ordered = sorted(self._sample)
        return LatencyStats(
            count=self.count,
            mean=self.mean,
            p50=percentile(ordered, 50),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
            p999=percentile(ordered, 99.9),
            max=self._max,
        )

    def __repr__(self) -> str:
        return (
            f"<ReservoirSample n={self.count} "
            f"sample={len(self._sample)}/{self.capacity}>"
        )
