"""The Health Monitor (§3.5).

Invoked when a machine higher in the service hierarchy notices a set of
unresponsive servers.  It queries each machine over Ethernet; an
unresponsive server is walked through soft reboot, then hard reboot,
then flagged for manual service.  A responsive server returns the error
vector: inter-FPGA link errors, DRAM status (bit errors and calibration
failures), application errors, PLL lock issues, PCIe errors, and
temperature shutdowns — plus the machine IDs of the north/south/east/
west neighbours so miswired or unplugged cables are caught.

The resulting report updates the failed-machine list, which invokes
the Mapping Manager for role relocation.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import typing

from repro.fabric.ethernet import EthernetNetwork, RpcTimeout
from repro.fabric.pod import Pod
from repro.fabric.torus import NodeId
from repro.sim import Engine, Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.services.mapping_manager import MappingManager


@dataclasses.dataclass
class ErrorFlags:
    """The §3.5 error vector, distilled into actionable flags."""

    unresponsive: bool = False
    fpga_failed: bool = False
    pll_unlocked: bool = False
    link_down: tuple = ()  # port names with dead links
    neighbor_mismatch: tuple = ()  # (port, expected, seen)
    dram_calibration_failed: bool = False
    dram_uncorrectable: bool = False
    app_error: bool = False
    seu_uncorrected: bool = False
    temp_shutdown: bool = False

    @property
    def any_error(self) -> bool:
        return any(
            (
                self.unresponsive,
                self.fpga_failed,
                self.pll_unlocked,
                bool(self.link_down),
                bool(self.neighbor_mismatch),
                self.dram_calibration_failed,
                self.dram_uncorrectable,
                self.app_error,
                self.seu_uncorrected,
                self.temp_shutdown,
            )
        )

    @property
    def needs_relocation(self) -> bool:
        """Hardware problems: move the role off this machine."""
        return (
            self.fpga_failed
            or self.pll_unlocked
            or bool(self.link_down)
            or bool(self.neighbor_mismatch)
            or self.dram_calibration_failed
            or self.temp_shutdown
        )

    @property
    def needs_reconfig_only(self) -> bool:
        """Transient state problems: reconfiguring in place suffices."""
        return not self.needs_relocation and (
            self.app_error or self.seu_uncorrected or self.unresponsive
        )


@dataclasses.dataclass
class MachineDiagnosis:
    """Outcome of investigating one machine."""

    machine_id: str
    node_id: NodeId
    flags: ErrorFlags
    reboots_performed: int = 0
    marked_dead: bool = False
    raw_health: dict | None = None


@dataclasses.dataclass
class HealthReport:
    """Outcome of one Health Monitor invocation."""

    diagnoses: list[MachineDiagnosis]
    started_at_ns: float
    finished_at_ns: float

    @property
    def failed_machines(self) -> list[MachineDiagnosis]:
        return [d for d in self.diagnoses if d.flags.any_error or d.marked_dead]

    @property
    def duration_ns(self) -> float:
        return self.finished_at_ns - self.started_at_ns


class HealthMonitor:
    """Pod-level failure investigation service."""

    def __init__(
        self,
        engine: Engine,
        pod: Pod,
        ethernet: EthernetNetwork | None = None,
        mapping_manager: "MappingManager | None" = None,
    ):
        self.engine = engine
        self.pod = pod
        self.ethernet = ethernet or pod.ethernet
        self.mapping_manager = mapping_manager
        self.failed_machine_list: dict[str, ErrorFlags] = {}
        self.invocations = 0
        self.watchdog_reports: list[HealthReport] = []
        self._watchdog = None

    # -- public API ----------------------------------------------------------

    def investigate(self, nodes: list[NodeId]) -> Event:
        """Investigate ``nodes``; event succeeds with a HealthReport.

        Side effects: reboots unresponsive machines (escalating), marks
        dead ones, updates the failed-machine list and — if a Mapping
        Manager is attached — triggers role relocation.
        """
        self.invocations += 1
        done = self.engine.event(name="health-report")
        self.engine.process(self._investigate_body(nodes, done), name="health.investigate")
        return done

    def start_watchdog(
        self, nodes: list[NodeId], period_ns: float = 10e9
    ) -> None:
        """Continuous monitoring: investigate ``nodes`` every period.

        In production the Health Monitor "is invoked when there is a
        suspected failure" by a machine higher in the hierarchy; the
        watchdog automates that trigger, scanning unprompted so hangs
        are caught without waiting for an aggregator to complain.
        """
        if self._watchdog is not None and self._watchdog.is_alive:
            raise RuntimeError("watchdog already running")

        def body():
            while True:
                yield self.engine.timeout(period_ns)
                unresponsive = [
                    node
                    for node in nodes
                    if not self.pod.server_at(node).is_responsive
                ]
                if not unresponsive:
                    continue
                report = yield self.investigate(unresponsive)
                self.watchdog_reports.append(report)

        self._watchdog = self.engine.process(
            body(), name="health.watchdog", daemon=True
        )

    def stop_watchdog(self) -> None:
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.kill()
        self._watchdog = None

    # -- internals -------------------------------------------------------------

    def _investigate_body(self, nodes: list[NodeId], done: Event) -> collections.abc.Generator:
        started = self.engine.now
        diagnoses = []
        for node in nodes:
            diagnosis = yield from self._diagnose(node)
            diagnoses.append(diagnosis)
        report = HealthReport(
            diagnoses=diagnoses, started_at_ns=started, finished_at_ns=self.engine.now
        )
        for diagnosis in report.failed_machines:
            self.failed_machine_list[diagnosis.machine_id] = diagnosis.flags
        if self.mapping_manager is not None and report.failed_machines:
            yield self.mapping_manager.handle_failures(report)
        done.succeed(report)

    def _diagnose(self, node: NodeId) -> collections.abc.Generator:
        server = self.pod.server_at(node)
        machine_id = server.machine_id
        diagnosis = MachineDiagnosis(machine_id, node, ErrorFlags())

        health = yield from self._query(machine_id)
        if health is None:
            # Escalation ladder: soft reboot -> hard reboot -> manual.
            yield server.soft_reboot()
            diagnosis.reboots_performed += 1
            health = yield from self._query(machine_id)
        if health is None:
            yield server.hard_reboot()
            diagnosis.reboots_performed += 1
            health = yield from self._query(machine_id)
        if health is None:
            server.mark_dead()
            diagnosis.marked_dead = True
            diagnosis.flags.unresponsive = True
            return diagnosis

        diagnosis.raw_health = health
        diagnosis.flags = self._analyze(node, health, diagnosis.reboots_performed)
        return diagnosis

    def _query(self, machine_id: str) -> collections.abc.Generator:
        try:
            health = yield self.ethernet.rpc(machine_id, "health", timeout_ns=5e6)
            return health
        except RpcTimeout:
            return None

    def _analyze(self, node: NodeId, health: dict, reboots: int) -> ErrorFlags:
        link_down = tuple(
            port for port, stats in health["links"].items() if stats["link_down"]
        )
        mismatches = []
        for port_name, seen in health["neighbors"].items():
            from repro.shell.router import Port

            expected_node = self.pod.topology.neighbor(node, Port(port_name))
            expected = self.pod.machine_id(expected_node)
            if seen != expected:
                mismatches.append((port_name, expected, seen))
        dram = health["dram"]
        return ErrorFlags(
            unresponsive=reboots > 0,
            fpga_failed=health["fpga_state"] == "failed",
            pll_unlocked=not health["pll_locked"],
            link_down=link_down,
            neighbor_mismatch=tuple(mismatches),
            dram_calibration_failed=any(d["calibration_failed"] for d in dram),
            dram_uncorrectable=any(d["uncorrectable"] > 0 for d in dram),
            app_error=health["app_error"],
            seu_uncorrected=health["seu"]["uncorrected"] > 0,
            temp_shutdown=health.get("temp_shutdown", False),
        )
