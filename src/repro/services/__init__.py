"""Pod-level management services (§3.3–§3.5).

Two services keep the fabric alive: the **Mapping Manager** configures
FPGAs with the correct application images when a service starts and
relocates roles after failures; the **Health Monitor** investigates
suspected failures, walking each machine through the soft-reboot /
hard-reboot / manual-service escalation ladder and collecting the
error vector the paper describes.
"""

from repro.services.failures import FailureInjector, FailureKind
from repro.services.health_monitor import (
    ErrorFlags,
    HealthMonitor,
    HealthReport,
    MachineDiagnosis,
)
from repro.services.mapping_manager import (
    InsufficientRingCapacity,
    MappingManager,
    RingAssignment,
    RoleSpec,
    ServiceDefinition,
)

__all__ = [
    "ErrorFlags",
    "FailureInjector",
    "FailureKind",
    "HealthMonitor",
    "HealthReport",
    "InsufficientRingCapacity",
    "MachineDiagnosis",
    "MappingManager",
    "RingAssignment",
    "RoleSpec",
    "ServiceDefinition",
]
