"""The Mapping Manager (§3.3–§3.5).

Responsible for configuring FPGAs with the correct application images
when a datacenter service starts, releasing RX-Halt once every FPGA of
a pipeline is configured (§3.4), and — when the Health Monitor updates
the failed-machine list — deciding where to relocate application roles:
rotating the ring onto the spare, reconfiguring in place for transient
errors, or mapping out bad hardware entirely.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import typing

from repro.fabric.pod import Pod
from repro.fabric.server import Server, ServerState
from repro.fabric.torus import NodeId
from repro.hardware.bitstream import Bitstream
from repro.hardware.constants import MODEL_RELOAD_WORST_NS
from repro.hardware.fpga import FpgaState
from repro.host.driver import FpgaDriver
from repro.shell.role import Role
from repro.sim import AllOf, Engine, Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.services.health_monitor import HealthReport


class InsufficientRingCapacity(Exception):
    """More failed nodes than spares: the service cannot stay mapped."""


RoleFactory = collections.abc.Callable[["RingAssignment", str], Role]


@dataclasses.dataclass(frozen=True)
class RoleSpec:
    """One pipeline stage: its name, image, and role constructor."""

    name: str
    bitstream: Bitstream
    factory: RoleFactory

    def to_dict(self) -> dict:
        """Canonical JSON form.  The role constructor is code, not
        data: :meth:`from_dict` rebuilds it from a caller-supplied
        factory, so ``from_dict(to_dict(r), r.factory) == r``."""
        return {"name": self.name, "bitstream": self.bitstream.to_dict()}

    @classmethod
    def from_dict(cls, document: dict, factory: RoleFactory) -> "RoleSpec":
        if not isinstance(document, dict):
            raise ValueError(
                f"RoleSpec document must be a mapping, got "
                f"{type(document).__name__}"
            )
        unknown = set(document) - {"name", "bitstream"}
        if unknown:
            raise ValueError(
                f"unknown RoleSpec fields: {sorted(unknown)} "
                "(known: ['bitstream', 'name'])"
            )
        if "name" not in document or "bitstream" not in document:
            raise ValueError("a RoleSpec document needs 'name' and 'bitstream'")
        return cls(
            name=document["name"],
            bitstream=Bitstream.from_dict(document["bitstream"]),
            factory=factory,
        )


@dataclasses.dataclass(frozen=True)
class ServiceDefinition:
    """An accelerated service: ordered active roles plus a spare image."""

    name: str
    roles: tuple
    spare: RoleSpec

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.roles] + [self.spare.name]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate role names in service {self.name!r}")

    def to_dict(self) -> dict:
        """Canonical JSON form: name, ordered role images, spare image.

        Everything except the role constructors (code, not data) round
        trips; the dict doubles as the definition's *fingerprint* — two
        builds of the same service compare equal through it even though
        their factory closures never do.
        """
        return {
            "name": self.name,
            "roles": [spec.to_dict() for spec in self.roles],
            "spare": self.spare.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        document: dict,
        factories: collections.abc.Mapping[str, RoleFactory],
    ) -> "ServiceDefinition":
        """Rebuild from :meth:`to_dict` output plus the role constructors.

        ``factories`` maps role name -> factory.  Construction runs the
        same ``__post_init__`` validation as building the definition
        directly, so invalid documents raise identical errors.
        """
        if not isinstance(document, dict):
            raise ValueError(
                f"ServiceDefinition document must be a mapping, got "
                f"{type(document).__name__}"
            )
        unknown = set(document) - {"name", "roles", "spare"}
        if unknown:
            raise ValueError(
                f"unknown ServiceDefinition fields: {sorted(unknown)} "
                "(known: ['name', 'roles', 'spare'])"
            )
        for key in ("name", "roles", "spare"):
            if key not in document:
                raise ValueError(f"a ServiceDefinition document needs {key!r}")

        def resolve(role_doc: dict) -> RoleSpec:
            role_name = role_doc.get("name")
            if role_name not in factories:
                raise ValueError(
                    f"no factory for role {role_name!r} of service "
                    f"{document['name']!r} (have: {sorted(factories)})"
                )
            return RoleSpec.from_dict(role_doc, factories[role_name])

        return cls(
            name=document["name"],
            roles=tuple(resolve(role_doc) for role_doc in document["roles"]),
            spare=resolve(document["spare"]),
        )


class RingAssignment:
    """The current mapping of a service's roles onto ring nodes."""

    def __init__(self, service: ServiceDefinition, pod: Pod, ring_nodes: list[NodeId]):
        if len(ring_nodes) < len(service.roles):
            raise InsufficientRingCapacity(
                f"service {service.name!r} needs {len(service.roles)} nodes, "
                f"ring has {len(ring_nodes)}"
            )
        self.service = service
        self.pod = pod
        self.ring_nodes = list(ring_nodes)
        self.excluded: set[NodeId] = set()  # mapped-out hardware
        self.role_to_node: dict[str, NodeId] = {}
        self.servable = True  # cleared when failures exhaust the ring
        self.version = 0
        self.recompute()

    def recompute(self) -> None:
        """Assign roles to healthy ring nodes in ring order.

        Active roles land on the first healthy nodes; every remaining
        healthy node hosts the spare image.  This is the "rotate the
        ring upon a machine failure" operation (§4.2).
        """
        healthy = [node for node in self.ring_nodes if node not in self.excluded]
        if len(healthy) < len(self.service.roles):
            raise InsufficientRingCapacity(
                f"service {self.service.name!r}: {len(healthy)} healthy nodes "
                f"for {len(self.service.roles)} roles"
            )
        self.role_to_node = {}
        for spec, node in zip(self.service.roles, healthy, strict=False):
            self.role_to_node[spec.name] = node
        self.spare_nodes = healthy[len(self.service.roles):]
        self.version += 1

    # -- queries used by roles ------------------------------------------------

    def node_of(self, role_name: str) -> NodeId:
        return self.role_to_node[role_name]

    def downstream_of(self, role_name: str) -> NodeId | None:
        """The node hosting the next active stage, if any."""
        names = [spec.name for spec in self.service.roles]
        index = names.index(role_name)
        if index + 1 < len(names):
            return self.role_to_node[names[index + 1]]
        return None

    def head_node(self) -> NodeId:
        return self.role_to_node[self.service.roles[0].name]

    def spec_for_node(self, node: NodeId) -> RoleSpec:
        for spec in self.service.roles:
            if self.role_to_node.get(spec.name) == node:
                return spec
        return self.service.spare

    def exclude(self, node: NodeId) -> None:
        if node not in self.ring_nodes:
            raise ValueError(f"{node} is not part of this ring")
        self.excluded.add(node)
        self.recompute()

    def map_out(self, node: NodeId) -> bool:
        """Exclude ``node``, tolerating ring exhaustion.

        Unlike :meth:`exclude`, mapping out the last spare does not
        raise: the assignment is marked unservable (``servable`` False)
        so the control plane can observe the dead ring, release it, and
        re-place the replica elsewhere.  Returns whether the ring is
        still servable.
        """
        if node not in self.ring_nodes:
            raise ValueError(f"{node} is not part of this ring")
        self.excluded.add(node)
        healthy = [n for n in self.ring_nodes if n not in self.excluded]
        if len(healthy) < len(self.service.roles):
            self.servable = False
            self.version += 1
            return False
        self.recompute()
        return True


class MappingManager:
    """Pod-level service deployment and failure response."""

    def __init__(self, engine: Engine, pod: Pod):
        self.engine = engine
        self.pod = pod
        self.assignments: list[RingAssignment] = []
        self._drivers: dict[str, FpgaDriver] = {}
        self.deployments = 0
        self.relocations = 0
        self.in_place_reconfigs = 0
        self.ring_exhaustions = 0
        # Optional BitstreamCache (set by the scheduler): nodes whose
        # needed image is still staged board-side skip the flash write.
        self.bitstream_cache = None

    def driver_for(self, server: Server) -> FpgaDriver:
        if server.machine_id not in self._drivers:
            self._drivers[server.machine_id] = FpgaDriver(server)
        return self._drivers[server.machine_id]

    # -- deployment (§3.3) -------------------------------------------------------

    def deploy(
        self,
        service: ServiceDefinition,
        ring_x: int,
        nodes: collections.abc.Sequence[NodeId] | None = None,
    ) -> Event:
        """Deploy ``service`` onto ring ``ring_x``; yields the assignment.

        Every *other* pod FPGA that is still unconfigured receives the
        spare image: "when a service is deployed, each server is
        designated to run a specific application on its local FPGA"
        (§3.1), and the torus cannot route through unconfigured parts.

        ``nodes`` restricts the assignment to a *region* — a subset of
        the ring's nodes granted by the tenancy layer — so several
        services can co-reside on one physical ring.  Nodes of the ring
        outside the region are untouched (they belong to other tenants
        or to the free pool).
        """
        if nodes is not None:
            ring_nodes = list(nodes)
        else:
            ring_nodes = [server.node_id for server in self.pod.ring(ring_x)]
        assignment = RingAssignment(service, self.pod, ring_nodes)
        # Consult the failed-machine knowledge before configuring: nodes
        # whose hardware is flagged for manual service (dead server or
        # failed FPGA) start mapped out, so a ring that previously lost
        # machines can still host a new service on its survivors.
        for node in ring_nodes:
            server = self.pod.server_at(node)
            if server.state is ServerState.DEAD or server.fpga.state is FpgaState.FAILED:
                if not assignment.map_out(node):
                    raise InsufficientRingCapacity(
                        f"ring {ring_x} of pod {self.pod.pod_id}: too much "
                        f"failed hardware for service {service.name!r}"
                    )
        done = self.engine.event(name=f"deploy:{service.name}")
        configure = [
            node for node in ring_nodes if node not in assignment.excluded
        ]
        for node, server in self.pod.servers.items():
            if node in ring_nodes or server.fpga.configured_role is not None:
                continue
            if server.state is ServerState.DEAD or server.fpga.state is FpgaState.FAILED:
                continue  # flagged for manual service; cannot take an image
            configure.append(node)
        self.engine.process(self._configure_body(assignment, configure, done))
        self.deployments += 1
        return done

    def _configure_body(
        self, assignment: RingAssignment, nodes: list[NodeId], done: Event
    ) -> collections.abc.Generator:
        """Reconfigure ``nodes`` with their assigned images, then release
        RX-Halt everywhere — only once ALL pipeline FPGAs are configured
        (§3.4).

        With a :class:`~repro.cluster.bitstream_cache.BitstreamCache`
        attached, a node whose needed image is still staged board-side
        — and whose shell is live — takes the partial-reconfiguration
        fast path at model-reload cost instead of a full flash write.
        """
        cache = self.bitstream_cache
        reconfigs = []
        for node in nodes:
            server = self.pod.server_at(node)
            spec = assignment.spec_for_node(node)
            fpga = server.fpga
            staged = cache is not None and cache.lookup(
                server.machine_id, spec.bitstream
            )
            if (
                staged
                and fpga.state is FpgaState.CONFIGURED
                and not fpga.role_reloading
                and spec.bitstream.shell_version.compatible_with(fpga.shell_version)
            ):
                reconfigs.append(
                    server.shell.partial_reconfigure(
                        spec.bitstream, reload_ns=MODEL_RELOAD_WORST_NS
                    )
                )
                continue
            driver = self.driver_for(server)
            reconfigs.append(driver.reconfigure(spec.bitstream))
        try:
            yield AllOf(self.engine, reconfigs)
        except Exception as exc:
            done.fail(exc)
            return
        if cache is not None:
            # Whatever just landed is, by definition, staged board-side.
            for node in nodes:
                cache.install(
                    self.pod.server_at(node).machine_id,
                    assignment.spec_for_node(node).bitstream,
                )
        for node in nodes:
            server = self.pod.server_at(node)
            spec = assignment.spec_for_node(node)
            server.shell.attach_role(spec.factory(assignment, spec.name))
        # "The Mapping Manager tells each server to release RX Halt once
        # all FPGAs in a pipeline have been configured."  Release is
        # pod-wide: responses route through nodes outside the ring.
        for node, server in self.pod.servers.items():
            if node not in assignment.excluded and server.fpga.configured_role:
                server.shell.release_rx_halt()
        # Register only once configured: a deploy that failed on bad
        # hardware must not leave a half-registered assignment behind.
        if assignment not in self.assignments:
            self.assignments.append(assignment)
        done.succeed(assignment)

    # -- failure handling (§3.5) ----------------------------------------------------

    def handle_failures(self, report: "HealthReport") -> Event:
        """React to a Health Monitor report; returns a completion event."""
        done = self.engine.event(name="mapping-failures")
        self.engine.process(self._handle_failures_body(report, done))
        return done

    def _handle_failures_body(self, report: "HealthReport", done) -> collections.abc.Generator:
        for assignment in self.assignments:
            if not assignment.servable:
                continue  # already exhausted; awaiting reconciliation
            relocate_nodes = []
            reconfig_nodes = []
            for diagnosis in report.failed_machines:
                if diagnosis.node_id not in assignment.ring_nodes:
                    continue
                if diagnosis.node_id in assignment.excluded:
                    continue
                if diagnosis.marked_dead or diagnosis.flags.needs_relocation:
                    relocate_nodes.append(diagnosis.node_id)
                elif diagnosis.flags.needs_reconfig_only:
                    reconfig_nodes.append(diagnosis.node_id)
            if relocate_nodes:
                servable = True
                for node in relocate_nodes:
                    servable = assignment.map_out(node)
                if not servable:
                    # Out of spares: the ring cannot stay mapped.  Leave
                    # it for the control plane to release and re-place.
                    self.ring_exhaustions += 1
                    continue
                self.relocations += 1
                # Reconfigure the whole surviving ring: clears corrupted
                # state and installs the rotated mapping.
                survivors = [
                    node
                    for node in assignment.ring_nodes
                    if node not in assignment.excluded
                ]
                finished = self.engine.event()
                yield from self._configure_body(assignment, survivors, finished)
            elif reconfig_nodes:
                # Reconfiguring in place is sufficient (§3.5).
                self.in_place_reconfigs += 1
                finished = self.engine.event()
                yield from self._configure_body(assignment, reconfig_nodes, finished)
        done.succeed(report)

    def assignment_for(self, service_name: str) -> RingAssignment:
        for assignment in self.assignments:
            if assignment.service.name == service_name:
                return assignment
        raise KeyError(f"no assignment for service {service_name!r}")
