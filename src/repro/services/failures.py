"""Failure injection for resilience experiments (§3.5).

Everything the Health Monitor's error vector can report is injectable:
server hangs, FPGA hardware faults, PLL unlock, broken links/cable
assemblies, DRAM calibration failures, application hangs, temperature
shutdowns, and uncorrectable SEUs.
"""

from __future__ import annotations

import enum

from repro.fabric.pod import Pod
from repro.fabric.torus import NodeId


class FailureKind(enum.Enum):
    SERVER_HANG = "server_hang"  # machine stops answering (reboot fixes)
    FPGA_HARDWARE_FAULT = "fpga_hardware_fault"  # needs manual service
    PLL_UNLOCK = "pll_unlock"
    LINK_FAILURE = "link_failure"  # one cable dark
    CABLE_ASSEMBLY_FAILURE = "cable_assembly_failure"  # whole shell dark
    DRAM_CALIBRATION = "dram_calibration"
    APP_HANG = "app_hang"  # role wedged; reconfigure-in-place fixes
    TEMP_SHUTDOWN = "temp_shutdown"
    SEU_UNCORRECTABLE = "seu_uncorrectable"


class FailureInjector:
    """Applies failures to a pod; used by tests and benchmarks."""

    def __init__(self, pod: Pod):
        self.pod = pod
        self.injected: list[tuple[FailureKind, NodeId]] = []

    def inject(self, kind: FailureKind, node: NodeId, port=None) -> None:
        """Inject ``kind`` at ``node`` (``port`` for link failures)."""
        server = self.pod.server_at(node)
        if kind is FailureKind.SERVER_HANG:
            server.crash()
        elif kind is FailureKind.FPGA_HARDWARE_FAULT:
            server.fpga.mark_failed()
        elif kind is FailureKind.PLL_UNLOCK:
            server.fpga.pll_locked = False
        elif kind is FailureKind.LINK_FAILURE:
            if port is None:
                raise ValueError("LINK_FAILURE needs a port")
            endpoint = server.shell.endpoints[port]
            if endpoint.link is None:
                raise ValueError(f"no link on {node} port {port}")
            endpoint.link.break_cable()
        elif kind is FailureKind.CABLE_ASSEMBLY_FAILURE:
            assembly = self._assembly_for(node)
            assembly.fail()
        elif kind is FailureKind.DRAM_CALIBRATION:
            server.shell.dram[0].fail_calibration()
        elif kind is FailureKind.APP_HANG:
            if server.shell.role is None:
                raise ValueError(f"no role attached at {node}")
            server.shell.role.app_error = True
        elif kind is FailureKind.TEMP_SHUTDOWN:
            server.fpga.temp_shutdown = True  # part shut itself down
            server.fpga.mark_failed()
        elif kind is FailureKind.SEU_UNCORRECTABLE:
            server.fpga.inject_seu(correctable=False)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown failure kind {kind}")
        self.injected.append((kind, node))

    def _assembly_for(self, node: NodeId):
        column = f"col{node[0]}"
        for name, assembly in self.pod.assemblies.items():
            if name.endswith(column):
                return assembly
        raise ValueError(f"no assembly for column of {node}")
