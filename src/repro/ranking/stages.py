"""FPGA roles for the eight-stage ranking ring (§4.2, Figure 5).

One FPGA for Feature Extraction (which also hosts the Queue Manager),
two for Free-Form Expressions, one for Compression, three for the
machine-learned scorer banks, and one spare.  Each role couples the
shared functional engine with a per-stage timing model; stage clock
frequencies come from Table 1.

Stage service times (per document):

* FE — proportional to the hit-vector token count: the 43 state
  machines consume the stream at 1–2 tokens/clock with a two-wide
  front end (§4.4), plus a DRAM dequeue from the Queue Manager;
* FFE — the cycle count of the stage's program on the 60-core
  processor model (data-independent, cached per model);
* Compression — proportional to the packed-vector length;
* Scoring — tree banks evaluate in parallel; latency ~ tree depth;
* Spare — pure store-and-forward.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import typing

from repro.ranking.documents import CompressedDocument
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import RankingModel
from repro.ranking.queue_manager import QueueManager
from repro.shell.messages import Packet, PacketKind
from repro.shell.role import Role
from repro.sim.units import cycles_to_ns

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.services.mapping_manager import RingAssignment

# Stage clock frequencies (MHz), per Table 1.
FE_CLOCK_MHZ = 150.0
FFE_CLOCK_MHZ = 125.0
COMPRESS_CLOCK_MHZ = 180.0
SCORE_CLOCK_MHZ = 166.0
SPARE_CLOCK_MHZ = 175.0

# FE timing: 1-2 cycles per token (§4.4); 1.0 effective with the
# double-buffered input overlap.
FE_CYCLES_PER_TOKEN = 1.0
FE_FIXED_CYCLES = 150

# Compression: table-lookup packing, several slots per cycle.
COMPRESS_CYCLES_PER_SLOT = 0.25
COMPRESS_FIXED_CYCLES = 100

# Scoring: banks of trees evaluate in parallel; pipeline depth ~ tree
# depth plus accumulation.
SCORE_CYCLES_PER_TREE_LEVEL = 4
SCORE_FIXED_CYCLES = 120

SPARE_FORWARD_CYCLES = 30

RESPONSE_BYTES = 64  # score + query id + performance counters (§4.1)
FEATURE_ENTRY_BYTES = 6  # {feature id, value} pairs on the wire


@dataclasses.dataclass
class RankingPayload:
    """What a request carries as it moves down the ring.

    The document rides the whole way (its bytes dominate only the
    host->FE hop; downstream hops carry the growing artifact set whose
    sizes determine serialization times).
    """

    document: CompressedDocument
    features: dict | None = None
    ffe_merged: dict | None = None
    packed: list | None = None
    partial_score: float = 0.0
    score: float | None = None


class RankingStageRole(Role):
    """Common machinery: model tracking, reload handling, forwarding."""

    stage_name = "stage"
    clock_mhz = 150.0

    def __init__(self, assignment: "RingAssignment", role_name: str):
        super().__init__()
        self.name = role_name
        self.stage_name = role_name
        self.assignment = assignment
        self.engine_ref: ScoringEngine = assignment.scoring_engine
        self.current_model_id: int | None = None
        self.docs_processed = 0
        self.reloads = 0
        self.busy_ns = 0.0

    # -- helpers -------------------------------------------------------------

    @property
    def sim(self):
        return self.shell.engine

    def downstream(self):
        if getattr(self.assignment, "loopback", False):
            return None  # node-level harness: no next stage
        return self.assignment.downstream_of(self.name)

    def forward(self, packet: Packet, payload_bytes: int):
        """Send ``packet`` (re-sized) to the next stage.

        In the node-level loopback harness (§5's per-stage injection
        experiments) there is no next stage: the result goes straight
        back to the injecting host.
        """
        downstream = self.downstream()
        if downstream is None:
            return self.send(packet.response_to(RESPONSE_BYTES, packet.payload))
        forwarded = Packet(
            kind=packet.kind,
            src=packet.src,
            dst=downstream,
            size_bytes=payload_bytes,
            payload=packet.payload,
            trace_id=packet.trace_id,
            injected_at_ns=packet.injected_at_ns,
            slot_id=packet.slot_id,
        )
        return self.send(forwarded)

    def model_reload_ns(self, model: RankingModel) -> float:
        """Reload this stage's tables from DRAM (§4.3)."""
        stage_bytes = model.footprint.stage_bytes(self.stage_key())
        dram = self.shell.dram[0]
        return dram.transfer_time_ns(stage_bytes, sequential=True)

    def stage_key(self) -> str:
        return self.name

    def handle(self, packet: Packet) -> collections.abc.Generator:
        if packet.kind is PacketKind.MODEL_RELOAD:
            yield from self._handle_reload(packet)
        elif packet.kind is PacketKind.REQUEST:
            started = self.sim.now
            yield from self.process_document(packet)
            self.busy_ns += self.sim.now - started
            self.docs_processed += 1

    def _handle_reload(self, packet: Packet) -> collections.abc.Generator:
        model: RankingModel = self.engine_ref.library[packet.payload]
        self.reloads += 1
        yield self.sim.timeout(self.model_reload_ns(model))
        self.current_model_id = model.model_id
        if self.downstream() is not None:
            yield self.forward(packet, packet.size_bytes)

    def process_document(self, packet: Packet) -> collections.abc.Generator:
        raise NotImplementedError

    def service_ns(self, cycles: float) -> float:
        return cycles_to_ns(cycles, self.clock_mhz)


class FeatureExtractionRole(RankingStageRole):
    """FE: the pipeline head — Queue Manager + 43 feature machines."""

    clock_mhz = FE_CLOCK_MHZ

    def __init__(self, assignment, role_name: str = "fe"):
        super().__init__(assignment, role_name)
        self.queue_manager: QueueManager | None = None

    def on_attach(self) -> None:
        self.queue_manager = QueueManager(
            self.sim,
            dispatch=self._dispatch_document,
            reload_model=self._switch_model,
            policy=self.assignment.qm_policy,
        )

    def detach(self) -> None:
        if self.queue_manager is not None and self.queue_manager.process.is_alive:
            self.queue_manager.process.kill()
        super().detach()

    def stage_key(self) -> str:
        return "fe"

    def handle(self, packet: Packet) -> collections.abc.Generator:
        if packet.kind is PacketKind.REQUEST:
            # Into the DRAM queue for its model; the QM drives dispatch.
            payload: RankingPayload = packet.payload
            self.queue_manager.enqueue(payload.document.model_id, packet)
        return
        yield  # pragma: no cover - handle() must be a generator

    def _switch_model(self, model_id: int) -> collections.abc.Generator:
        """QM model switch: reload FE and ripple a reload downstream."""
        model = self.engine_ref.library[model_id]
        self.reloads += 1
        yield self.sim.timeout(self.model_reload_ns(model))
        self.current_model_id = model_id
        downstream = self.downstream()
        if downstream is None:
            return  # loopback harness: nothing downstream to reload
        reload_packet = Packet(
            kind=PacketKind.MODEL_RELOAD,
            src=self.shell.node_id,
            dst=downstream,
            size_bytes=64,
            payload=model_id,
        )
        yield self.send(reload_packet)

    def _dispatch_document(self, packet: Packet) -> collections.abc.Generator:
        """Dequeue from DRAM, extract features, forward to FFE 0."""
        payload: RankingPayload = packet.payload
        document = payload.document
        dram = self.shell.dram[0]
        yield dram.transfer(packet.size_bytes)  # dequeue the request
        tokens = document.total_tuples
        yield self.sim.timeout(
            self.service_ns(FE_FIXED_CYCLES + FE_CYCLES_PER_TOKEN * tokens)
        )
        payload.features = self.engine_ref.features(document)
        self.docs_processed += 1
        feature_bytes = FEATURE_ENTRY_BYTES * len(payload.features)
        yield self.forward(packet, feature_bytes)


class FfeRole(RankingStageRole):
    """FFE: one of the two free-form-expression FPGAs."""

    clock_mhz = FFE_CLOCK_MHZ

    def __init__(self, assignment, role_name: str):
        super().__init__(assignment, role_name)
        self.stage_index = 0 if role_name.endswith("0") else 1

    def process_document(self, packet: Packet) -> collections.abc.Generator:
        payload: RankingPayload = packet.payload
        model = self.engine_ref.model_for(payload.document)
        cycles = self.engine_ref.ffe_stage_cycles(model, self.stage_index)
        yield self.sim.timeout(self.service_ns(cycles))
        if self.stage_index == 1:
            payload.ffe_merged = self.engine_ref.ffe_values(payload.document, model)
            size = FEATURE_ENTRY_BYTES * len(payload.ffe_merged)
        else:
            size = packet.size_bytes + FEATURE_ENTRY_BYTES * len(
                model.ffe_stage0.output_slots()
            )
        yield self.forward(packet, size)


class CompressionRole(RankingStageRole):
    """Compression: pack the sparse vector for the scoring banks."""

    clock_mhz = COMPRESS_CLOCK_MHZ

    def stage_key(self) -> str:
        return "compress"

    def process_document(self, packet: Packet) -> collections.abc.Generator:
        payload: RankingPayload = packet.payload
        model = self.engine_ref.model_for(payload.document)
        cycles = COMPRESS_FIXED_CYCLES + COMPRESS_CYCLES_PER_SLOT * len(
            model.compression
        )
        yield self.sim.timeout(self.service_ns(cycles))
        payload.packed = self.engine_ref.packed(payload.document, model)
        yield self.forward(packet, model.compression.packed_bytes())


class ScoringRole(RankingStageRole):
    """One of the three scorer banks; bank 2 emits the response."""

    clock_mhz = SCORE_CLOCK_MHZ

    def __init__(self, assignment, role_name: str):
        super().__init__(assignment, role_name)
        self.bank = int(role_name[-1])

    def process_document(self, packet: Packet) -> collections.abc.Generator:
        payload: RankingPayload = packet.payload
        model = self.engine_ref.model_for(payload.document)
        depth = 6  # bank trees evaluate in parallel; latency ~ depth
        cycles = SCORE_FIXED_CYCLES + SCORE_CYCLES_PER_TREE_LEVEL * depth
        yield self.sim.timeout(self.service_ns(cycles))
        payload.partial_score += self.engine_ref.bank_partial(
            payload.document, model, self.bank
        )
        if self.bank == 2:
            payload.score = payload.partial_score
            response = packet.response_to(RESPONSE_BYTES, payload)
            yield self.send(response)
        else:
            yield self.forward(packet, packet.size_bytes)


class SpareRankingRole(RankingStageRole):
    """The spare: a configured pass-through keeping the ring rotatable."""

    clock_mhz = SPARE_CLOCK_MHZ

    def stage_key(self) -> str:
        return "spare"

    def handle(self, packet: Packet) -> collections.abc.Generator:
        # The spare holds no model state; in the ring it only forwards
        # router traffic.  In the loopback harness it echoes requests so
        # its injection rate can be measured like the other stages.
        yield self.sim.timeout(self.service_ns(SPARE_FORWARD_CYCLES))
        if packet.kind is PacketKind.REQUEST and getattr(
            self.assignment, "loopback", False
        ):
            yield self.send(packet.response_to(RESPONSE_BYTES, packet.payload))
