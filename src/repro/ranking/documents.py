"""Documents, queries, hit vectors, and the wire codec (§4.1).

Each encoded {document, query} request has three sections:

1. a **header** with basic request parameters (document length, number
   of query terms, model selector, hit-vector location/length);
2. the **software-computed features** — {feature id, value} pairs for
   features not implemented (or not sensible) on the FPGA;
3. the **hit vector**: for every metastream of the document, the
   locations of query-term matches, as tuples carrying the offset delta
   from the previous tuple, the matching term, and other properties.

To save bandwidth, hit-vector tuples are encoded in three sizes —
two, four or six bytes — selected per tuple.  Compressed documents are
truncated to 64 KB (the slot size), the only behavioural deviation
from pure software, affecting ~0.14 % of documents (Figure 4).
"""

from __future__ import annotations

import dataclasses
import struct

from repro.hardware.constants import DOC_TRUNCATE_BYTES

MAX_STREAMS = 8
MAX_QUERY_TERMS = 16

_HEADER = struct.Struct("<HBBQIBBHxx")  # 22 bytes
_MAGIC = 0xCA7A  # "Catapult"
_VERSION = 1
_SW_FEATURE = struct.Struct("<Hf")  # feature id + float value
_STREAM_HEADER = struct.Struct("<BHB")  # stream id, tuple count, flags


class CodecError(Exception):
    """Raised on malformed encodings or out-of-range fields."""


@dataclasses.dataclass(frozen=True)
class Query:
    """A search query as the ranking service sees it."""

    query_id: int
    terms: tuple  # term ids, deduplicated, <= MAX_QUERY_TERMS
    model_id: int = 0

    def __post_init__(self) -> None:
        if not 1 <= len(self.terms) <= MAX_QUERY_TERMS:
            raise ValueError(
                f"queries carry 1..{MAX_QUERY_TERMS} terms, got {len(self.terms)}"
            )


@dataclasses.dataclass(frozen=True)
class HitTuple:
    """One query-term match location within a metastream.

    ``delta`` is the offset from the previous tuple (or stream start),
    ``term_index`` indexes into the query's term list, ``properties``
    carries per-hit flags (capitalization, anchor text, etc.).
    """

    delta: int
    term_index: int
    properties: int = 0

    def __post_init__(self) -> None:
        if self.delta < 0 or self.delta >= 1 << 24:
            raise ValueError(f"delta out of range: {self.delta}")
        if not 0 <= self.term_index < 64:
            raise ValueError(f"term index out of range: {self.term_index}")
        if not 0 <= self.properties < 1 << 16:
            raise ValueError(f"properties out of range: {self.properties}")

    @property
    def encoded_size(self) -> int:
        """2, 4 or 6 bytes depending on field magnitudes (§4.1)."""
        if self.delta < 1 << 10 and self.term_index < 16 and self.properties == 0:
            return 2
        if self.delta < 1 << 16 and self.properties < 1 << 8:
            return 4
        return 6


@dataclasses.dataclass
class StreamHits:
    """The hit tuples for one metastream."""

    stream_id: int
    length: int  # metastream length in tokens (for positional features)
    tuples: list

    def __post_init__(self) -> None:
        if not 0 <= self.stream_id < MAX_STREAMS:
            raise ValueError(f"stream id out of range: {self.stream_id}")


@dataclasses.dataclass
class CompressedDocument:
    """One {document, query} scoring request, pre-encoding."""

    doc_id: int
    doc_length: int
    num_query_terms: int
    model_id: int
    software_features: list  # (feature_id, float value) pairs
    streams: list  # StreamHits

    @property
    def total_tuples(self) -> int:
        return sum(len(stream.tuples) for stream in self.streams)


class DocumentCodec:
    """Binary encode/decode for scoring requests.

    Tuple wire format (little-endian), selected by a 2-bit tag in the
    low bits of the first byte:

    * tag 0 (2 B): ``tag:2 | term:4 | delta:10``
    * tag 1 (4 B): ``tag:2 | term:6 | delta:16 | properties:8``
    * tag 2 (6 B): ``tag:2 | term:6 | delta:24 | properties:16``
    """

    truncate_bytes = DOC_TRUNCATE_BYTES

    # -- encoding -----------------------------------------------------------

    def encode(self, document: CompressedDocument, truncate: bool = True) -> bytes:
        out = bytearray()
        out += _HEADER.pack(
            _MAGIC,
            _VERSION,
            document.model_id,
            document.doc_id,
            document.doc_length,
            document.num_query_terms,
            len(document.streams),
            len(document.software_features),
        )
        for feature_id, value in document.software_features:
            out += _SW_FEATURE.pack(feature_id, value)
        for stream in document.streams:
            out += _STREAM_HEADER.pack(stream.stream_id, len(stream.tuples), 0)
            out += self._encode_tuples(stream.tuples)
        if truncate and len(out) > self.truncate_bytes:
            return self._truncate(document)
        return bytes(out)

    def _encode_tuples(self, tuples: list) -> bytes:
        out = bytearray()
        for hit in tuples:
            size = hit.encoded_size
            if size == 2:
                word = 0 | (hit.term_index << 2) | (hit.delta << 6)
                out += word.to_bytes(2, "little")
            elif size == 4:
                word = 1 | (hit.term_index << 2) | (hit.delta << 8) | (
                    hit.properties << 24
                )
                out += word.to_bytes(4, "little")
            else:
                word = 2 | (hit.term_index << 2) | (hit.delta << 8) | (
                    hit.properties << 32
                )
                out += word.to_bytes(6, "little")
        return bytes(out)

    def _truncate(self, document: CompressedDocument) -> bytes:
        """Drop trailing tuples until the encoding fits in 64 KB (§4.1)."""
        trimmed = CompressedDocument(
            doc_id=document.doc_id,
            doc_length=document.doc_length,
            num_query_terms=document.num_query_terms,
            model_id=document.model_id,
            software_features=list(document.software_features),
            streams=[
                StreamHits(s.stream_id, s.length, list(s.tuples))
                for s in document.streams
            ],
        )
        encoded = self.encode(trimmed, truncate=False)
        while len(encoded) > self.truncate_bytes:
            victim = max(
                (s for s in trimmed.streams if s.tuples),
                key=lambda s: len(s.tuples),
                default=None,
            )
            if victim is None:
                raise CodecError("request exceeds 64 KB even with no tuples")
            overshoot = len(encoded) - self.truncate_bytes
            drop = max(1, overshoot // 6)
            del victim.tuples[-drop:]
            encoded = self.encode(trimmed, truncate=False)
        return encoded

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> CompressedDocument:
        if len(data) < _HEADER.size:
            raise CodecError(f"short header: {len(data)} bytes")
        (
            magic,
            version,
            model_id,
            doc_id,
            doc_length,
            num_terms,
            num_streams,
            num_sw,
        ) = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad magic {magic:#x}")
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        offset = _HEADER.size
        software_features = []
        for _ in range(num_sw):
            feature_id, value = _SW_FEATURE.unpack_from(data, offset)
            software_features.append((feature_id, value))
            offset += _SW_FEATURE.size
        streams = []
        for _ in range(num_streams):
            stream_id, count, _flags = _STREAM_HEADER.unpack_from(data, offset)
            offset += _STREAM_HEADER.size
            tuples, offset = self._decode_tuples(data, offset, count)
            streams.append(StreamHits(stream_id, length=doc_length, tuples=tuples))
        return CompressedDocument(
            doc_id=doc_id,
            doc_length=doc_length,
            num_query_terms=num_terms,
            model_id=model_id,
            software_features=software_features,
            streams=streams,
        )

    def _decode_tuples(self, data: bytes, offset: int, count: int):
        tuples = []
        for _ in range(count):
            tag = data[offset] & 0x3
            if tag == 0:
                word = int.from_bytes(data[offset : offset + 2], "little")
                tuples.append(HitTuple((word >> 6) & 0x3FF, (word >> 2) & 0xF))
                offset += 2
            elif tag == 1:
                word = int.from_bytes(data[offset : offset + 4], "little")
                tuples.append(
                    HitTuple((word >> 8) & 0xFFFF, (word >> 2) & 0x3F, word >> 24)
                )
                offset += 4
            elif tag == 2:
                word = int.from_bytes(data[offset : offset + 6], "little")
                tuples.append(
                    HitTuple((word >> 8) & 0xFFFFFF, (word >> 2) & 0x3F, word >> 32)
                )
                offset += 6
            else:
                raise CodecError(f"bad tuple tag at offset {offset}")
        return tuples, offset
