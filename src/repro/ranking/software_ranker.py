"""The pure-software baseline ranker (§5, Figures 14–15).

The same functional pipeline — feature extraction, free-form
expressions, tree-ensemble scoring — executed entirely on the server's
12 cores.  Scores are bit-identical to the FPGA path (both call the
shared :class:`ScoringEngine`).

The timing model captures why software loses at the tail: per-document
CPU time is large (the FPGA's parallel feature machines and 240-thread
FFE processor collapse to sequential core work), and *grows noisier
under load* — contention in the memory hierarchy inflates service
times superlinearly with core occupancy, which is exactly the
mechanism the paper cites for the widening software tail at higher
injection rates ("the variability of software latency increases at
higher loads due to contention in the CPU's memory hierarchy while
the FPGA's performance remains stable").
"""

from __future__ import annotations

import collections.abc
import typing

from repro.analysis import ReservoirSample
from repro.fabric.server import Server
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import RankingModel
from repro.sim.units import US

if typing.TYPE_CHECKING:  # pragma: no cover - avoids a package cycle
    from repro.workloads.traces import ScoringRequest


class SoftwareRanker:
    """Scores requests on the host CPU with a contention-aware model."""

    SSD_LOOKUP_NS = 20 * US
    PREP_NS = 60 * US  # hit-vector computation and setup
    METASTREAM_NS_PER_TOKEN = 60.0  # stream walking / tokenization
    FE_NS_PER_TUPLE = 300.0  # 43 machines' work, serialized on a core
    FFE_NS_PER_INSTRUCTION = 35.0  # interpreter-style FFE evaluation
    SCORE_NS_PER_NODE_VISIT = 25.0
    TREE_DEPTH_VISITED = 6

    # Contention in the memory hierarchy: multiplicative inflation that
    # grows with core occupancy, plus load-dependent log-normal jitter.
    CONTENTION_COEFF = 0.30
    JITTER_BASE_SIGMA = 0.05
    JITTER_LOAD_SIGMA = 0.55

    def __init__(self, server: Server, scoring_engine: ScoringEngine):
        self.server = server
        self.engine = server.engine
        self.scoring_engine = scoring_engine
        self._rng = server.engine.rng.stream(f"swrank:{server.machine_id}")
        self.latencies_ns = ReservoirSample()
        self.scored = 0

    # -- timing model ---------------------------------------------------------

    def base_service_ns(self, request: ScoringRequest, model: RankingModel) -> float:
        """Deterministic per-document CPU time (one core)."""
        document = request.document
        tuples = document.total_tuples
        ffe_instructions = (
            model.ffe_stage0.instruction_count + model.ffe_stage1.instruction_count
        )
        node_visits = model.scorer.tree_count * self.TREE_DEPTH_VISITED
        return (
            self.PREP_NS
            + document.doc_length * self.METASTREAM_NS_PER_TOKEN
            + tuples * self.FE_NS_PER_TUPLE
            + ffe_instructions * self.FFE_NS_PER_INSTRUCTION
            + node_visits * self.SCORE_NS_PER_NODE_VISIT
        )

    def _inflated_service_ns(self, base_ns: float) -> float:
        cpu = self.server.cpu
        utilization = (cpu.in_use - 1) / max(cpu.capacity - 1, 1)
        utilization = min(max(utilization, 0.0), 1.0)
        contention = 1.0 + self.CONTENTION_COEFF * utilization**1.5
        sigma = self.JITTER_BASE_SIGMA + self.JITTER_LOAD_SIGMA * utilization**2
        jitter = self._rng.lognormvariate(0.0, sigma)
        return base_ns * contention * jitter

    # -- scoring --------------------------------------------------------------

    def score_request(self, request: ScoringRequest) -> collections.abc.Generator:
        """Score one request on a CPU core; returns (score, latency_ns)."""
        started = self.engine.now
        model = self.scoring_engine.library[request.document.model_id]
        yield self.engine.timeout(self.SSD_LOOKUP_NS)
        grant = self.server.cpu.request()
        yield grant
        try:
            service = self._inflated_service_ns(self.base_service_ns(request, model))
            yield self.engine.timeout(service)
        finally:
            self.server.cpu.release()
        score = self.scoring_engine.score(request.document, model)
        latency = self.engine.now - started
        self.latencies_ns.append(latency)
        self.scored += 1
        return score, latency
