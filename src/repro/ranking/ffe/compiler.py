"""The FFE compiler: expression AST -> register ISA.

Performs constant folding, expands pow / integer-divide / mod into
multiple instructions (the hardware has no dedicated units for them,
§4.5), and allocates the 32 per-thread registers with a simple
stack-discipline allocator (expression trees release operand registers
as soon as the producing op retires them).
"""

from __future__ import annotations

import dataclasses

from repro.ranking.ffe.expr import (
    BinOp,
    Const,
    Expr,
    Feature,
    IfThenElse,
    Metafeature,
    UnOp,
)
from repro.ranking.ffe.isa import Instruction, Opcode, REGISTER_COUNT


class CompileError(Exception):
    """Raised when an expression cannot be compiled (register overflow)."""


@dataclasses.dataclass
class CompiledExpression:
    """A compiled FFE: its instruction stream plus scheduling metadata."""

    output_slot: int  # where the result lands in the FFE output vector
    instructions: list
    expected_latency: int  # sum of instruction latencies (priority key)

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)


_SIMPLE_BINOPS = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "div": Opcode.FPDIV,
}

_SIMPLE_UNOPS = {
    "ln": Opcode.LN,
    "exp": Opcode.EXP,
    "neg": Opcode.NEG,
    "abs": Opcode.ABS,
    "ftoi": Opcode.FTOI,
}

_CMP_OPS = {"lt": Opcode.CMPLT, "le": Opcode.CMPLE, "eq": Opcode.CMPEQ}


class FfeCompiler:
    """Compile expressions to :class:`CompiledExpression` objects."""

    def compile(self, expression: Expr, output_slot: int) -> CompiledExpression:
        state = _CompileState()
        result_reg = self._emit(expression, state)
        state.code.append(Instruction(Opcode.RET, a=result_reg))
        latency = sum(instr.latency for instr in state.code)
        return CompiledExpression(
            output_slot=output_slot,
            instructions=state.code,
            expected_latency=latency,
        )

    # -- recursive emission ----------------------------------------------------

    def _emit(self, node: Expr, state: "_CompileState") -> int:
        if isinstance(node, Const):
            dst = state.alloc()
            state.code.append(Instruction(Opcode.LDC, dst=dst, imm=node.value))
            return dst
        if isinstance(node, (Feature, Metafeature)):
            dst = state.alloc()
            state.code.append(Instruction(Opcode.LDF, dst=dst, imm=node.slot))
            return dst
        if isinstance(node, UnOp):
            return self._emit_unop(node, state)
        if isinstance(node, BinOp):
            return self._emit_binop(node, state)
        if isinstance(node, IfThenElse):
            return self._emit_conditional(node, state)
        raise CompileError(f"cannot compile node {node!r}")

    def _emit_unop(self, node: UnOp, state: "_CompileState") -> int:
        operand = self._emit(node.operand, state)
        state.free(operand)
        dst = state.alloc()
        state.code.append(Instruction(_SIMPLE_UNOPS[node.op], dst=dst, a=operand))
        return dst

    def _emit_binop(self, node: BinOp, state: "_CompileState") -> int:
        # Constant folding: a subtree of constants costs zero cycles.
        if isinstance(node.left, Const) and isinstance(node.right, Const):
            dst = state.alloc()
            state.code.append(
                Instruction(Opcode.LDC, dst=dst, imm=node.evaluate({}))
            )
            return dst
        if node.op in _SIMPLE_BINOPS:
            a = self._emit(node.left, state)
            b = self._emit(node.right, state)
            state.free(a)
            state.free(b)
            dst = state.alloc()
            state.code.append(Instruction(_SIMPLE_BINOPS[node.op], dst=dst, a=a, b=b))
            return dst
        if node.op == "pow":
            return self._emit_pow(node, state)
        if node.op == "idiv":
            return self._emit_idiv(node, state)
        if node.op == "mod":
            return self._emit_mod(node, state)
        raise CompileError(f"unknown binop {node.op!r}")

    def _emit_pow(self, node: BinOp, state: "_CompileState") -> int:
        """pow(a, b) = exp(b * ln(|a|)), zero-safe (§4.5 expansion)."""
        a = self._emit(node.left, state)
        b = self._emit(node.right, state)
        abs_a = state.alloc()
        state.code.append(Instruction(Opcode.ABS, dst=abs_a, a=a))
        ln_a = state.alloc()
        state.code.append(Instruction(Opcode.LN, dst=ln_a, a=abs_a))
        state.free(abs_a)
        prod = state.alloc()
        state.code.append(Instruction(Opcode.MUL, dst=prod, a=b, b=ln_a))
        state.free(ln_a)
        state.free(b)
        exp_reg = state.alloc()
        state.code.append(Instruction(Opcode.EXP, dst=exp_reg, a=prod))
        state.free(prod)
        # Zero-safe: pow(0, b) must be 0, matching the evaluator.
        zero = state.alloc()
        state.code.append(Instruction(Opcode.LDC, dst=zero, imm=0.0))
        is_zero = state.alloc()
        state.code.append(Instruction(Opcode.CMPEQ, dst=is_zero, a=a, b=zero))
        state.free(a)
        dst = state.alloc()
        state.code.append(
            Instruction(Opcode.SEL, dst=dst, a=is_zero, b=zero, c=exp_reg)
        )
        state.free(is_zero)
        state.free(zero)
        state.free(exp_reg)
        return dst

    def _emit_idiv(self, node: BinOp, state: "_CompileState") -> int:
        """idiv(a, b) = ftoi(a / b) — no integer divider in hardware."""
        a = self._emit(node.left, state)
        b = self._emit(node.right, state)
        state.free(a)
        state.free(b)
        quotient = state.alloc()
        state.code.append(Instruction(Opcode.FPDIV, dst=quotient, a=a, b=b))
        state.free(quotient)
        dst = state.alloc()
        state.code.append(Instruction(Opcode.FTOI, dst=dst, a=quotient))
        return dst

    def _emit_mod(self, node: BinOp, state: "_CompileState") -> int:
        """mod(a, b) = a - b * ftoi(a / b)."""
        a = self._emit(node.left, state)
        b = self._emit(node.right, state)
        quotient = state.alloc()
        state.code.append(Instruction(Opcode.FPDIV, dst=quotient, a=a, b=b))
        trunc = state.alloc()
        state.code.append(Instruction(Opcode.FTOI, dst=trunc, a=quotient))
        state.free(quotient)
        product = state.alloc()
        state.code.append(Instruction(Opcode.MUL, dst=product, a=b, b=trunc))
        state.free(trunc)
        state.free(b)
        dst = state.alloc()
        state.code.append(Instruction(Opcode.SUB, dst=dst, a=a, b=product))
        state.free(product)
        state.free(a)
        return dst

    def _emit_conditional(self, node: IfThenElse, state: "_CompileState") -> int:
        """Predicated execution: both arms computed, SEL picks (§4.5)."""
        a = self._emit(node.left, state)
        b = self._emit(node.right, state)
        predicate = state.alloc()
        state.code.append(Instruction(_CMP_OPS[node.cmp], dst=predicate, a=a, b=b))
        state.free(a)
        state.free(b)
        then_reg = self._emit(node.then, state)
        else_reg = self._emit(node.orelse, state)
        state.free(then_reg)
        state.free(else_reg)
        dst = state.alloc()
        state.code.append(
            Instruction(Opcode.SEL, dst=dst, a=predicate, b=then_reg, c=else_reg)
        )
        state.free(predicate)
        return dst


class _CompileState:
    """Register free-list plus the emitted code."""

    def __init__(self) -> None:
        self.code: list = []
        self._free = list(range(REGISTER_COUNT - 1, -1, -1))

    def alloc(self) -> int:
        if not self._free:
            raise CompileError(
                f"expression needs more than {REGISTER_COUNT} registers; "
                "split it across FFE stages with a metafeature"
            )
        return self._free.pop()

    def free(self, register: int) -> None:
        self._free.append(register)
