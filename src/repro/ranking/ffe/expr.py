"""The FFE expression language (AST) and its reference evaluator.

Expressions read extracted features (and metafeatures computed by an
upstream FFE stage, §4.5) and combine them arithmetically, including
conditional execution and the complex operators ln, exp, pow, divide.
The reference evaluator defines the semantics the compiled ISA must
reproduce exactly.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import math


class Expr:
    """Base class for expression nodes."""

    def evaluate(self, features: collections.abc.Mapping[int, float]) -> float:
        raise NotImplementedError

    def operation_count(self) -> int:
        """Number of arithmetic operations (latency heuristic input)."""
        raise NotImplementedError

    # Operator sugar keeps model-construction code readable.
    def __add__(self, other: "Expr") -> "Expr":
        return BinOp("add", self, _wrap(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return BinOp("sub", self, _wrap(other))

    def __mul__(self, other: "Expr") -> "Expr":
        return BinOp("mul", self, _wrap(other))

    def __truediv__(self, other: "Expr") -> "Expr":
        return BinOp("div", self, _wrap(other))


def _wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(float(value))


@dataclasses.dataclass(frozen=True)
class Const(Expr):
    value: float

    def evaluate(self, features) -> float:
        return self.value

    def operation_count(self) -> int:
        return 0


@dataclasses.dataclass(frozen=True)
class Feature(Expr):
    """Read one feature slot (absent features read as 0.0)."""

    slot: int

    def evaluate(self, features) -> float:
        return features.get(self.slot, 0.0)

    def operation_count(self) -> int:
        return 1


@dataclasses.dataclass(frozen=True)
class Metafeature(Expr):
    """An intermediate result computed by an upstream FFE stage (§4.5).

    Downstream stages read it "like any other feature, effectively
    replacing that part of the expression with a simple feature read".
    """

    index: int

    def evaluate(self, features) -> float:
        return features.get(self.slot, 0.0)

    @property
    def slot(self) -> int:
        return METAFEATURE_BASE + self.index

    def operation_count(self) -> int:
        return 1


# Metafeatures live above the dynamic + software feature spaces.
METAFEATURE_BASE = 1 << 16

_BINOPS: dict[str, collections.abc.Callable[[float, float], float]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if b != 0.0 else 0.0,  # hardware-safe divide
    "min": min,
    "max": max,
    "pow": lambda a, b: _safe_pow(a, b),
    "idiv": lambda a, b: float(int(a / b)) if b != 0.0 else 0.0,
    "mod": lambda a, b: a - b * float(int(a / b)) if b != 0.0 else 0.0,
}

_UNOPS: dict[str, collections.abc.Callable[[float], float]] = {
    "ln": lambda a: math.log(a) if a > 0.0 else 0.0,  # hardware-safe ln
    "exp": lambda a: math.exp(min(a, 700.0)),
    "neg": lambda a: -a,
    "abs": abs,
    "ftoi": lambda a: float(int(a)),
}


def _safe_pow(a: float, b: float) -> float:
    if a == 0.0:
        return 0.0
    if a < 0.0:
        a = abs(a)  # hardware uses |a|: exp(b*ln(a)) expansion
    return math.exp(min(b * math.log(a), 700.0))


@dataclasses.dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def evaluate(self, features) -> float:
        return _BINOPS[self.op](
            self.left.evaluate(features), self.right.evaluate(features)
        )

    def operation_count(self) -> int:
        extra = {"pow": 3, "idiv": 2, "mod": 3}.get(self.op, 1)
        return extra + self.left.operation_count() + self.right.operation_count()


@dataclasses.dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNOPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def evaluate(self, features) -> float:
        return _UNOPS[self.op](self.operand.evaluate(features))

    def operation_count(self) -> int:
        return 1 + self.operand.operation_count()


@dataclasses.dataclass(frozen=True)
class IfThenElse(Expr):
    """Conditional execution: ``then`` if ``left cmp right`` else ``orelse``."""

    cmp: str  # "lt" | "le" | "eq"
    left: Expr
    right: Expr
    then: Expr
    orelse: Expr

    def __post_init__(self) -> None:
        if self.cmp not in ("lt", "le", "eq"):
            raise ValueError(f"unknown comparison {self.cmp!r}")

    def evaluate(self, features) -> float:
        a = self.left.evaluate(features)
        b = self.right.evaluate(features)
        taken = {"lt": a < b, "le": a <= b, "eq": a == b}[self.cmp]
        # Both arms evaluate (predicated execution, no branches on HW).
        then_val = self.then.evaluate(features)
        else_val = self.orelse.evaluate(features)
        return then_val if taken else else_val

    def operation_count(self) -> int:
        return (
            2
            + self.left.operation_count()
            + self.right.operation_count()
            + self.then.operation_count()
            + self.orelse.operation_count()
        )
