"""The FFE processor model: 60 cores, 4 threads/core, shared complex
blocks (§4.5, Figure 7).

Microarchitecture modelled:

* each core issues at most one instruction per cycle, chosen from its
  4 thread slots by a **priority encoder** (slot 0 wins ties) — not
  fair scheduling;
* all functional units are **fully pipelined**: any unit accepts a new
  operation every cycle, so a thread stalled on a long fpdiv/ln does
  not block other threads;
* within a thread, execution is in-order and dependent: the next
  instruction issues only after the previous completes (expression
  code is a dependence chain);
* complex ops (ln/fpdiv/exp/ftoi) arbitrate for the **one complex
  block per 6-core cluster** with round-robin priority: one complex
  issue per cluster per cycle;
* the feature storage tile is double-buffered, so one document loads
  while another processes — modelled as zero reload gap between docs.

The simulation is event-driven per instruction (not per cycle), so the
cost is O(total instructions), yet issue-port and complex-block
contention are accounted cycle-accurately.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.ranking.ffe.assembler import FfeProgram, cluster_of
from repro.ranking.ffe.compiler import CompiledExpression
from repro.ranking.ffe.isa import Instruction, Opcode, REGISTER_COUNT


@dataclasses.dataclass
class ExecutionResult:
    """Outputs plus timing of one document's pass through the processor."""

    outputs: dict  # output_slot -> value
    cycles: int
    instructions_executed: int
    complex_ops: int
    complex_stall_cycles: int

    def time_ns(self, clock_mhz: float) -> float:
        return self.cycles * 1_000.0 / clock_mhz


class FfeProcessor:
    """Executes an :class:`FfeProgram` against one feature vector."""

    def __init__(self, program: FfeProgram):
        self.program = program

    # -- functional execution ----------------------------------------------------

    @staticmethod
    def _execute_instruction(
        instr: Instruction, regs: list, features: dict, outputs: dict, slot: int
    ) -> None:
        op = instr.op
        if op is Opcode.LDC:
            regs[instr.dst] = float(instr.imm)
        elif op is Opcode.LDF:
            regs[instr.dst] = features.get(instr.imm, 0.0)
        elif op is Opcode.ADD:
            regs[instr.dst] = regs[instr.a] + regs[instr.b]
        elif op is Opcode.SUB:
            regs[instr.dst] = regs[instr.a] - regs[instr.b]
        elif op is Opcode.MUL:
            regs[instr.dst] = regs[instr.a] * regs[instr.b]
        elif op is Opcode.MIN:
            regs[instr.dst] = min(regs[instr.a], regs[instr.b])
        elif op is Opcode.MAX:
            regs[instr.dst] = max(regs[instr.a], regs[instr.b])
        elif op is Opcode.NEG:
            regs[instr.dst] = -regs[instr.a]
        elif op is Opcode.ABS:
            regs[instr.dst] = abs(regs[instr.a])
        elif op is Opcode.CMPLT:
            regs[instr.dst] = 1.0 if regs[instr.a] < regs[instr.b] else 0.0
        elif op is Opcode.CMPLE:
            regs[instr.dst] = 1.0 if regs[instr.a] <= regs[instr.b] else 0.0
        elif op is Opcode.CMPEQ:
            regs[instr.dst] = 1.0 if regs[instr.a] == regs[instr.b] else 0.0
        elif op is Opcode.SEL:
            regs[instr.dst] = regs[instr.b] if regs[instr.a] != 0.0 else regs[instr.c]
        elif op is Opcode.FPDIV:
            b = regs[instr.b]
            regs[instr.dst] = regs[instr.a] / b if b != 0.0 else 0.0
        elif op is Opcode.LN:
            import math

            a = regs[instr.a]
            regs[instr.dst] = math.log(a) if a > 0.0 else 0.0
        elif op is Opcode.EXP:
            import math

            regs[instr.dst] = math.exp(min(regs[instr.a], 700.0))
        elif op is Opcode.FTOI:
            regs[instr.dst] = float(int(regs[instr.a]))
        elif op is Opcode.RET:
            outputs[slot] = regs[instr.a]
        else:  # pragma: no cover - exhaustive
            raise RuntimeError(f"unhandled opcode {op}")

    # -- timed execution -------------------------------------------------------------

    def execute(self, features: dict) -> ExecutionResult:
        """Run every thread's expressions; returns outputs and cycles.

        Event-driven schedule: each thread is a sequential stream of
        instructions; cores and cluster complex-blocks are modelled as
        next-free-cycle counters with priority arbitration.
        """
        program = self.program
        outputs: dict = {}
        instructions_executed = 0
        complex_ops = 0
        complex_stalls = 0

        core_free = [0] * program.core_count
        cluster_count = cluster_of(program.core_count - 1) + 1
        complex_free = [0] * cluster_count

        # Per-thread cursors: (ready_cycle, core, slot, expr_idx, instr_idx,
        # registers).  A heap ordered by (ready, slot, core) realizes the
        # priority encoder: earlier-ready first, then lower slot number.
        heap: list = []
        thread_regs: dict = {}
        for thread in program.threads:
            if thread.expressions:
                key = (0, thread.slot, thread.core)
                heapq.heappush(heap, key + (0, 0))
                thread_regs[(thread.core, thread.slot)] = [0.0] * REGISTER_COUNT

        max_cycle = 0
        while heap:
            ready, slot, core, expr_idx, instr_idx = heapq.heappop(heap)
            thread = self.program.thread(core, slot)
            expr: CompiledExpression = thread.expressions[expr_idx]
            instr: Instruction = expr.instructions[instr_idx]

            # Issue-port arbitration: one instruction per core per cycle.
            issue = max(ready, core_free[core])
            # Complex-block arbitration: one per cluster per cycle.
            if instr.is_complex:
                cluster = cluster_of(core)
                stall_free = max(issue, complex_free[cluster])
                complex_stalls += stall_free - issue
                issue = stall_free
                complex_free[cluster] = issue + 1
                complex_ops += 1
            core_free[core] = issue + 1

            regs = thread_regs[(core, slot)]
            self._execute_instruction(
                instr, regs, features, outputs, expr.output_slot
            )
            instructions_executed += 1
            complete = issue + instr.latency
            max_cycle = max(max_cycle, complete)

            # Advance the thread cursor (in-order, dependent issue).
            instr_idx += 1
            if instr_idx >= len(expr.instructions):
                expr_idx += 1
                instr_idx = 0
            if expr_idx < len(thread.expressions):
                heapq.heappush(heap, (complete, slot, core, expr_idx, instr_idx))

        return ExecutionResult(
            outputs=outputs,
            cycles=max_cycle,
            instructions_executed=instructions_executed,
            complex_ops=complex_ops,
            complex_stall_cycles=complex_stalls,
        )

    def evaluate_only(self, features: dict) -> dict:
        """Functional-only execution (no timing); used by the software
        baseline where timing is modelled differently."""
        outputs: dict = {}
        regs = [0.0] * REGISTER_COUNT
        for thread in self.program.threads:
            for expr in thread.expressions:
                for instr in expr.instructions:
                    self._execute_instruction(
                        instr, regs, features, outputs, expr.output_slot
                    )
        return outputs
