"""The FFE assembler: static-priority thread assignment (§4.5).

Rather than fair scheduling, threads are statically prioritized.  The
assembler maps the expressions with the longest expected latency to
Thread Slot 0 on all cores, then fills Slot 1 on all cores, and so
forth; once every core has one thread per slot, remaining expressions
are appended to the end of previously-mapped threads, starting again
at Thread Slot 0.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.constants import (
    FFE_CORE_COUNT,
    FFE_CORES_PER_CLUSTER,
    FFE_THREADS_PER_CORE,
)


@dataclasses.dataclass
class ThreadAssignment:
    """The ordered expression list one hardware thread executes."""

    core: int
    slot: int
    expressions: list = dataclasses.field(default_factory=list)

    @property
    def expected_latency(self) -> int:
        return sum(expr.expected_latency for expr in self.expressions)


@dataclasses.dataclass
class FfeProgram:
    """A full processor load: every thread's work for one model."""

    threads: list  # ThreadAssignment, indexed core-major
    core_count: int
    threads_per_core: int

    def thread(self, core: int, slot: int) -> ThreadAssignment:
        return self.threads[core * self.threads_per_core + slot]

    @property
    def expression_count(self) -> int:
        return sum(len(thread.expressions) for thread in self.threads)

    @property
    def instruction_count(self) -> int:
        return sum(
            expr.instruction_count
            for thread in self.threads
            for expr in thread.expressions
        )

    def output_slots(self) -> set:
        return {
            expr.output_slot
            for thread in self.threads
            for expr in thread.expressions
        }


def assemble(
    expressions: list,
    core_count: int = FFE_CORE_COUNT,
    threads_per_core: int = FFE_THREADS_PER_CORE,
) -> FfeProgram:
    """Assign compiled expressions to thread slots, longest first."""
    if core_count < 1 or threads_per_core < 1:
        raise ValueError("need at least one core and one thread slot")
    threads = [
        ThreadAssignment(core=core, slot=slot)
        for core in range(core_count)
        for slot in range(threads_per_core)
    ]

    def thread_at(core: int, slot: int) -> ThreadAssignment:
        return threads[core * threads_per_core + slot]

    ordered = sorted(expressions, key=lambda e: e.expected_latency, reverse=True)
    # First pass: slot 0 on all cores, then slot 1 on all cores, ...
    position = 0
    for slot in range(threads_per_core):
        for core in range(core_count):
            if position >= len(ordered):
                break
            thread_at(core, slot).expressions.append(ordered[position])
            position += 1
    # Remainder: appended to existing threads, starting again at slot 0.
    slot, core = 0, 0
    while position < len(ordered):
        thread_at(core, slot).expressions.append(ordered[position])
        position += 1
        core += 1
        if core == core_count:
            core = 0
            slot = (slot + 1) % threads_per_core
    return FfeProgram(
        threads=threads, core_count=core_count, threads_per_core=threads_per_core
    )


def cluster_of(core: int) -> int:
    """Which 6-core cluster (sharing one complex block) a core is in."""
    return core // FFE_CORES_PER_CLUSTER
