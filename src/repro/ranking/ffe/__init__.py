"""Free-Form Expressions: a custom multicore soft processor (§4.5).

FFEs are mathematical combinations of extracted features — from "add
two features" up to thousands of operations with conditional execution
and expensive floating-point operators (ln, pow, divide).  They vary
too much across models to synthesize datapaths, so the paper built a
massively multithreaded soft processor: 60 area-efficient cores on one
D5 FPGA, 4 hardware threads per core arbitrating cycle-by-cycle for
fully-pipelined functional units, with clusters of 6 cores sharing one
"complex block" (ln / fpdiv / exp / float-to-int and the feature
storage tile).

This package implements the whole stack: expression AST, compiler to a
small register ISA (pow, integer divide and mod are expanded into
multiple instructions, as in the paper), the static-priority assembler
(longest expressions to thread slot 0), and an event-driven
cycle-accounting processor model.
"""

from repro.ranking.ffe.expr import (
    BinOp,
    Const,
    Expr,
    Feature,
    IfThenElse,
    Metafeature,
    UnOp,
)
from repro.ranking.ffe.isa import Instruction, Opcode, OPCODE_LATENCY, COMPLEX_OPS
from repro.ranking.ffe.compiler import CompiledExpression, FfeCompiler, CompileError
from repro.ranking.ffe.assembler import FfeProgram, ThreadAssignment, assemble
from repro.ranking.ffe.processor import FfeProcessor, ExecutionResult

__all__ = [
    "assemble",
    "BinOp",
    "COMPLEX_OPS",
    "CompileError",
    "CompiledExpression",
    "Const",
    "ExecutionResult",
    "Expr",
    "Feature",
    "FfeCompiler",
    "FfeProcessor",
    "FfeProgram",
    "IfThenElse",
    "Instruction",
    "Metafeature",
    "Opcode",
    "OPCODE_LATENCY",
    "ThreadAssignment",
    "UnOp",
]
