"""The FFE processor's instruction set.

A small three-address register ISA.  Functional units are fully
pipelined; the **complex block** (shared by each 6-core cluster) owns
LN, FPDIV, EXP and FTOI — pow, integer divide and mod do not exist in
hardware and are expanded by the compiler (§4.5).
"""

from __future__ import annotations

import dataclasses
import enum


class Opcode(enum.Enum):
    LDC = "ldc"  # dst <- constant
    LDF = "ldf"  # dst <- feature[slot] (from the feature storage tile)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MIN = "min"
    MAX = "max"
    NEG = "neg"
    ABS = "abs"
    CMPLT = "cmplt"  # dst <- 1.0 if a < b else 0.0
    CMPLE = "cmple"
    CMPEQ = "cmpeq"
    SEL = "sel"  # dst <- b if predicate(a)!=0 else c  (predicated select)
    # Complex block ops (shared per 6-core cluster):
    FPDIV = "fpdiv"
    LN = "ln"
    EXP = "exp"
    FTOI = "ftoi"
    RET = "ret"  # emit result (value in register a)


# Execution latency in core clock cycles; all units fully pipelined.
OPCODE_LATENCY: dict[Opcode, int] = {
    Opcode.LDC: 1,
    Opcode.LDF: 2,  # feature storage tile read
    Opcode.ADD: 3,
    Opcode.SUB: 3,
    Opcode.MUL: 4,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.NEG: 1,
    Opcode.ABS: 1,
    Opcode.CMPLT: 2,
    Opcode.CMPLE: 2,
    Opcode.CMPEQ: 2,
    Opcode.SEL: 2,
    Opcode.FPDIV: 24,
    Opcode.LN: 20,
    Opcode.EXP: 18,
    Opcode.FTOI: 4,
    Opcode.RET: 1,
}

# Ops that arbitrate for the cluster's shared complex block (§4.5).
COMPLEX_OPS = frozenset({Opcode.FPDIV, Opcode.LN, Opcode.EXP, Opcode.FTOI})

REGISTER_COUNT = 32  # per-thread architectural registers


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One three-address instruction.

    ``a``/``b``/``c`` are register indices, except: LDC's ``imm`` holds
    the constant, LDF's ``imm`` holds the feature slot.
    """

    op: Opcode
    dst: int = 0
    a: int = 0
    b: int = 0
    c: int = 0
    imm: float | int = 0

    @property
    def is_complex(self) -> bool:
        return self.op in COMPLEX_OPS

    @property
    def latency(self) -> int:
        return OPCODE_LATENCY[self.op]

    def __str__(self) -> str:
        if self.op is Opcode.LDC:
            return f"ldc r{self.dst}, {self.imm}"
        if self.op is Opcode.LDF:
            return f"ldf r{self.dst}, f[{self.imm}]"
        if self.op is Opcode.RET:
            return f"ret r{self.a}"
        if self.op is Opcode.SEL:
            return f"sel r{self.dst}, r{self.a} ? r{self.b} : r{self.c}"
        return f"{self.op.value} r{self.dst}, r{self.a}, r{self.b}"
