"""Deploying and driving the ranking service on a pod (§4, §5).

``ranking_service`` builds the :class:`ServiceDefinition` mapping the
eight ranking roles (Figure 5) onto a ring, with bitstreams synthesized
from the Table-1-calibrated component library.  :class:`RankingPipeline`
is a thin per-ring adapter over the generic cluster-layer
:class:`~repro.cluster.deployment.Deployment`: the injection machinery
(closed-loop injector threads, single-request dispatch) is inherited,
with :class:`RankingRequestAdapter` supplying the ranking-specific
parts — the software portion of scoring (SSD lookup, hit-vector
computation on a CPU core, §4) and the :class:`RankingPayload` that
rides the ring.
"""

from __future__ import annotations

import collections.abc
import typing

from repro.cluster.deployment import Deployment, InjectorStats, RequestAdapter
from repro.fabric.pod import Pod
from repro.fabric.server import Server
from repro.hardware.synthesis import synthesize
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.stages import (
    CompressionRole,
    FeatureExtractionRole,
    FfeRole,
    RankingPayload,
    ScoringRole,
    SpareRankingRole,
)
from repro.services.mapping_manager import (
    RingAssignment,
    RoleSpec,
    ServiceDefinition,
)
from repro.sim import Engine
from repro.sim.units import US

if typing.TYPE_CHECKING:  # pragma: no cover - avoids a package cycle
    from repro.workloads.traces import ScoringRequest

__all__ = [
    "HOST_PREP_CPU_NS",
    "InjectorStats",
    "RankingPipeline",
    "RankingRequestAdapter",
    "SSD_LOOKUP_NS",
    "ranking_bitstreams",
    "ranking_service",
]

# Host-side software portion per request (§4): SSD metastream fetch and
# hit-vector computation + encoding on a CPU core.
SSD_LOOKUP_NS = 20 * US
HOST_PREP_CPU_NS = 30 * US

# Component counts per role, calibrated so synthesis lands on Table 1.
ROLE_COMPONENTS: dict[str, dict[str, int]] = {
    "fe": {
        "fe.state_machine": 43,
        "fe.stream_processor": 1,
        "fe.gathering_network": 1,
    },
    "ffe0": {"ffe.core": 60, "ffe.complex_block": 10, "ffe.feature_store": 10},
    "ffe1": {"ffe.core": 60, "ffe.complex_block": 10, "ffe.feature_store": 10},
    "compress": {"compress.engine": 1},
    "score0": {"score.tree_bank": 40, "score.evaluator": 1},
    "score1": {"score.tree_bank": 40, "score.evaluator": 1},
    "score2": {"score.tree_bank": 41, "score.evaluator": 1},
    "spare": {"spare.passthrough": 1},
}

ROLE_ORDER = ("fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2")
SPARE_NAME = "spare"

_ROLE_CLASSES = {
    "fe": FeatureExtractionRole,
    "ffe0": FfeRole,
    "ffe1": FfeRole,
    "compress": CompressionRole,
    "score0": ScoringRole,
    "score1": ScoringRole,
    "score2": ScoringRole,
    "spare": SpareRankingRole,
}


def ranking_bitstreams() -> dict[str, object]:
    """Synthesize every ranking role; returns {role: (bitstream, report)}."""
    return {
        role: synthesize(role, components)
        for role, components in ROLE_COMPONENTS.items()
    }


def ranking_service(
    scoring_engine: ScoringEngine, qm_policy: str = "batch"
) -> ServiceDefinition:
    """The 7-active-roles-plus-spare service of Figure 5."""
    synthesized = ranking_bitstreams()

    def make_factory(role_name: str):
        role_class = _ROLE_CLASSES[role_name]

        def factory(assignment: RingAssignment, name: str):
            # Stash shared context on the assignment for the stages.
            assignment.scoring_engine = scoring_engine
            assignment.qm_policy = qm_policy
            return role_class(assignment, name)

        return factory

    roles = tuple(
        RoleSpec(
            name=role_name,
            bitstream=synthesized[role_name][0],
            factory=make_factory(role_name),
        )
        for role_name in ROLE_ORDER
    )
    spare = RoleSpec(
        name=SPARE_NAME,
        bitstream=synthesized[SPARE_NAME][0],
        factory=make_factory(SPARE_NAME),
    )
    return ServiceDefinition(name="bing-ranking", roles=roles, spare=spare)


class RankingRequestAdapter(RequestAdapter):
    """Ranking-specific dispatch: host prep plus the ring payload (§4)."""

    def payload_for(self, request: "ScoringRequest") -> RankingPayload:
        return RankingPayload(document=request.document)

    def size_of(self, request: "ScoringRequest") -> int:
        return request.size_bytes

    def prep(self, server: Server) -> collections.abc.Generator:
        """SSD metastream fetch, then hit-vector prep on a CPU core."""
        yield server.engine.timeout(SSD_LOOKUP_NS)
        yield from server.run_on_core(HOST_PREP_CPU_NS)


class RankingPipeline(Deployment):
    """One deployed ranking ring plus its injection helpers."""

    def __init__(
        self,
        engine: Engine,
        pod: Pod,
        library: ModelLibrary,
        ring_x: int = 0,
        qm_policy: str = "batch",
    ):
        self.library = library
        self.scoring_engine = ScoringEngine(library)
        super().__init__(
            engine,
            pod,
            ranking_service(self.scoring_engine, qm_policy),
            ring_x=ring_x,
            adapter=RankingRequestAdapter(),
        )

    def make_request_pool(
        self, count: int, seed: int = 1, model_mix: dict | None = None
    ) -> list:
        from repro.workloads.traces import TraceGenerator

        generator = TraceGenerator(seed=seed, model_mix=model_mix)
        return [generator.request() for _ in range(count)]
