"""Deploying and driving the ranking service on a pod (§4, §5).

``ranking_service`` builds the :class:`ServiceDefinition` mapping the
eight ranking roles (Figure 5) onto a ring, with bitstreams synthesized
from the Table-1-calibrated component library.  :class:`RankingPipeline`
wraps deployment and provides the injection machinery the evaluation
benches use: closed-loop injector threads that perform the software
portion of scoring (SSD lookup, hit-vector computation — §4) before
injecting to the local FPGA, and latency/throughput collection.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.analysis import LatencyStats, ThroughputMeter
from repro.fabric.pod import Pod
from repro.fabric.server import Server
from repro.hardware.synthesis import synthesize
from repro.host.slots import RequestTimeout, SlotClient
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.stages import (
    CompressionRole,
    FeatureExtractionRole,
    FfeRole,
    RankingPayload,
    ScoringRole,
    SpareRankingRole,
)
from repro.services.mapping_manager import (
    MappingManager,
    RingAssignment,
    RoleSpec,
    ServiceDefinition,
)
from repro.sim import Engine, Event
from repro.sim.units import US

if typing.TYPE_CHECKING:  # pragma: no cover - avoids a package cycle
    from repro.workloads.traces import ScoringRequest

# Host-side software portion per request (§4): SSD metastream fetch and
# hit-vector computation + encoding on a CPU core.
SSD_LOOKUP_NS = 20 * US
HOST_PREP_CPU_NS = 30 * US

# Component counts per role, calibrated so synthesis lands on Table 1.
ROLE_COMPONENTS: dict[str, dict[str, int]] = {
    "fe": {
        "fe.state_machine": 43,
        "fe.stream_processor": 1,
        "fe.gathering_network": 1,
    },
    "ffe0": {"ffe.core": 60, "ffe.complex_block": 10, "ffe.feature_store": 10},
    "ffe1": {"ffe.core": 60, "ffe.complex_block": 10, "ffe.feature_store": 10},
    "compress": {"compress.engine": 1},
    "score0": {"score.tree_bank": 40, "score.evaluator": 1},
    "score1": {"score.tree_bank": 40, "score.evaluator": 1},
    "score2": {"score.tree_bank": 41, "score.evaluator": 1},
    "spare": {"spare.passthrough": 1},
}

ROLE_ORDER = ("fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2")
SPARE_NAME = "spare"

_ROLE_CLASSES = {
    "fe": FeatureExtractionRole,
    "ffe0": FfeRole,
    "ffe1": FfeRole,
    "compress": CompressionRole,
    "score0": ScoringRole,
    "score1": ScoringRole,
    "score2": ScoringRole,
    "spare": SpareRankingRole,
}


def ranking_bitstreams() -> dict[str, object]:
    """Synthesize every ranking role; returns {role: (bitstream, report)}."""
    return {
        role: synthesize(role, components)
        for role, components in ROLE_COMPONENTS.items()
    }


def ranking_service(
    scoring_engine: ScoringEngine, qm_policy: str = "batch"
) -> ServiceDefinition:
    """The 7-active-roles-plus-spare service of Figure 5."""
    synthesized = ranking_bitstreams()

    def make_factory(role_name: str):
        role_class = _ROLE_CLASSES[role_name]

        def factory(assignment: RingAssignment, name: str):
            # Stash shared context on the assignment for the stages.
            assignment.scoring_engine = scoring_engine
            assignment.qm_policy = qm_policy
            return role_class(assignment, name)

        return factory

    roles = tuple(
        RoleSpec(
            name=role_name,
            bitstream=synthesized[role_name][0],
            factory=make_factory(role_name),
        )
        for role_name in ROLE_ORDER
    )
    spare = RoleSpec(
        name=SPARE_NAME,
        bitstream=synthesized[SPARE_NAME][0],
        factory=make_factory(SPARE_NAME),
    )
    return ServiceDefinition(name="bing-ranking", roles=roles, spare=spare)


@dataclasses.dataclass
class InjectorStats:
    """Results from one injector (a server's worth of threads)."""

    latencies_ns: list
    timeouts: int
    completed: int

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies_ns)


class RankingPipeline:
    """One deployed ranking ring plus its injection helpers."""

    def __init__(
        self,
        engine: Engine,
        pod: Pod,
        library: ModelLibrary,
        ring_x: int = 0,
        qm_policy: str = "batch",
    ):
        self.engine = engine
        self.pod = pod
        self.library = library
        self.ring_x = ring_x
        self.scoring_engine = ScoringEngine(library)
        self.mapping_manager = MappingManager(engine, pod)
        self.service = ranking_service(self.scoring_engine, qm_policy)
        self.assignment: RingAssignment | None = None
        self.meter = ThroughputMeter(engine)

    # -- deployment ------------------------------------------------------------

    def deploy(self) -> RingAssignment:
        done = self.mapping_manager.deploy(self.service, self.ring_x)
        self.assignment = self.engine.run_until(done)
        return self.assignment

    @property
    def head_node(self):
        return self.assignment.head_node()

    def stage_role(self, role_name: str):
        node = self.assignment.node_of(role_name)
        return self.pod.server_at(node).shell.role

    # -- injection ---------------------------------------------------------------

    def make_request_pool(
        self, count: int, seed: int = 1, model_mix: dict | None = None
    ) -> list:
        from repro.workloads.traces import TraceGenerator

        generator = TraceGenerator(seed=seed, model_mix=model_mix)
        return [generator.request() for _ in range(count)]

    def spawn_injector(
        self,
        server: Server,
        threads: int,
        pool: list,
        requests_per_thread: int,
        include_prep: bool = True,
        timeout_ns: float = 1e9,
    ) -> tuple[Event, InjectorStats]:
        """Closed-loop injection from ``server`` with ``threads`` threads.

        Each thread repeatedly: does the software portion (SSD +
        hit-vector prep on a core, §4) when ``include_prep``, fills its
        slot, and sleeps until the score interrupt.  Returns a
        completion event plus the stats object (filled in-place).
        """
        client = SlotClient(server)
        stats = InjectorStats(latencies_ns=[], timeouts=0, completed=0)
        pool_cycle = itertools.cycle(pool)
        finished: list = []
        done = self.engine.event(name=f"injector:{server.machine_id}")

        def thread_body(lease) -> typing.Generator:
            for _ in range(requests_per_thread):
                request = next(pool_cycle)
                started = self.engine.now
                if include_prep:
                    yield server.engine.timeout(SSD_LOOKUP_NS)
                    yield from server.run_on_core(HOST_PREP_CPU_NS)
                payload = RankingPayload(document=request.document)
                try:
                    yield from lease.request(
                        dst=self.head_node,
                        size_bytes=request.size_bytes,
                        payload=payload,
                        timeout_ns=timeout_ns,
                    )
                except RequestTimeout:
                    stats.timeouts += 1
                    continue
                stats.latencies_ns.append(self.engine.now - started)
                stats.completed += 1
                self.meter.record()

        def waiter(procs) -> typing.Generator:
            from repro.sim import AllOf

            yield AllOf(self.engine, procs)
            done.succeed(stats)

        procs = [
            self.engine.process(thread_body(lease), name=f"inj.{server.machine_id}")
            for lease in client.leases(threads)
        ]
        self.engine.process(waiter(procs))
        return done, stats
