"""Document scoring: the machine-learned model evaluator (§4.6).

The last stage of the pipeline takes features and free-form expressions
as inputs and produces a single floating-point score, which determines
the document's position in the ranked results.  The model occupies
three FPGAs (Scoring 0/1/2 in Figure 5), so the evaluator is an
additive ensemble of decision trees partitioned into three banks whose
partial sums combine down the pipeline.
"""

from __future__ import annotations

import collections.abc
import dataclasses


@dataclasses.dataclass(frozen=True)
class TreeNode:
    """A binary decision node (``left``/``right``) or a leaf (``value``).

    ``feature`` indexes the *packed* feature vector produced by the
    Compression stage, not raw feature slots.
    """

    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclasses.dataclass(frozen=True)
class DecisionTree:
    """One regression tree over the packed feature vector."""

    root: TreeNode

    def evaluate(self, packed: collections.abc.Sequence[float]) -> float:
        node = self.root
        while not node.is_leaf:
            value = packed[node.feature] if node.feature < len(packed) else 0.0
            node = node.left if value <= node.threshold else node.right
        return node.value

    def node_count(self) -> int:
        def count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    def depth(self) -> int:
        def measure(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self.root)


class NeuralScorer:
    """A two-layer MLP scorer (the RankNet-style alternative).

    Bing-era ranking mixed boosted trees with neural models; the
    scoring FPGAs hold whichever the selected model uses.  The hidden
    layer is split across the three scoring banks: each bank evaluates
    a third of the hidden units and contributes its partial sum of
    ``v_j * tanh(w_j . x + b_j)``; the output bias rides with bank 2.
    """

    BANKS = 3

    def __init__(self, weights, hidden_bias, output_weights, output_bias=0.0):
        if not weights:
            raise ValueError("need at least one hidden unit")
        if len(weights) != len(hidden_bias) or len(weights) != len(output_weights):
            raise ValueError("hidden bias / output weights must match hidden units")
        self.weights = [list(w) for w in weights]  # hidden x features
        self.hidden_bias = list(hidden_bias)
        self.output_weights = list(output_weights)
        self.output_bias = output_bias

    @property
    def hidden_units(self) -> int:
        return len(self.weights)

    def _unit(self, j: int, packed: collections.abc.Sequence[float]) -> float:
        import math

        w = self.weights[j]
        activation = self.hidden_bias[j] + sum(
            w[i] * packed[i] for i in range(min(len(w), len(packed)))
        )
        return self.output_weights[j] * math.tanh(activation)

    def evaluate_bank(self, index: int, packed: collections.abc.Sequence[float]) -> float:
        if not 0 <= index < self.BANKS:
            raise ValueError(f"bank index {index} out of range")
        partial = sum(
            self._unit(j, packed)
            for j in range(index, self.hidden_units, self.BANKS)
        )
        if index == 2:
            partial += self.output_bias
        return partial

    def evaluate(self, packed: collections.abc.Sequence[float]) -> float:
        return sum(self.evaluate_bank(i, packed) for i in range(self.BANKS))

    def bank_node_count(self, index: int) -> int:
        """Parameter count proxy for Model Reload sizing."""
        units = len(range(index, self.hidden_units, self.BANKS))
        width = len(self.weights[0]) if self.weights else 0
        return units * (width + 2)

    def total_nodes(self) -> int:
        return sum(self.bank_node_count(i) for i in range(self.BANKS))

    @property
    def tree_count(self) -> int:  # uniform scorer interface
        return self.hidden_units


class BoostedTreeScorer:
    """An additive tree ensemble split into three scoring banks."""

    BANKS = 3

    def __init__(self, trees: list, learning_rate: float = 0.1):
        if not trees:
            raise ValueError("scorer needs at least one tree")
        self.trees = list(trees)
        self.learning_rate = learning_rate

    def bank(self, index: int) -> list:
        """The trees evaluated on scoring FPGA ``index`` (round-robin)."""
        if not 0 <= index < self.BANKS:
            raise ValueError(f"bank index {index} out of range")
        return self.trees[index :: self.BANKS]

    def evaluate_bank(self, index: int, packed: collections.abc.Sequence[float]) -> float:
        """Partial sum contributed by one scoring FPGA."""
        return self.learning_rate * sum(
            tree.evaluate(packed) for tree in self.bank(index)
        )

    def evaluate(self, packed: collections.abc.Sequence[float]) -> float:
        """The full score: what the three banks' partial sums add up to."""
        return self.learning_rate * sum(tree.evaluate(packed) for tree in self.trees)

    def bank_node_count(self, index: int) -> int:
        return sum(tree.node_count() for tree in self.bank(index))

    def total_nodes(self) -> int:
        return sum(tree.node_count() for tree in self.trees)

    @property
    def tree_count(self) -> int:
        return len(self.trees)
