"""The shared scoring engine: one functional evaluator for both paths.

The paper's implementation "produces results that are identical to
software"; we guarantee the same property by construction — the FPGA
roles and the software baseline call the *same* engine.  Results are
cached per (document, model) so throughput experiments that re-inject
a pool of documents pay the functional cost once (the timing models
are what the experiments measure).
"""

from __future__ import annotations

import collections

from repro.ranking.documents import CompressedDocument
from repro.ranking.features import FeatureExtractor, FeatureLayout
from repro.ranking.ffe.processor import FfeProcessor
from repro.ranking.models import ModelLibrary, RankingModel


class _LruCache:
    """A small bounded cache (documents cycle through benchmarks)."""

    def __init__(self, capacity: int = 8_192):
        self.capacity = capacity
        self._data: collections.OrderedDict = collections.OrderedDict()

    def get(self, key):
        if key in self._data:
            self._data.move_to_end(key)
            return self._data[key]
        return None

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)


class ScoringEngine:
    """Functional evaluation with caching, plus model timing metadata."""

    def __init__(self, library: ModelLibrary, layout: FeatureLayout | None = None):
        self.library = library
        self.layout = layout or FeatureLayout()
        self.extractor = FeatureExtractor(self.layout)
        self._feature_cache = _LruCache()
        self._ffe_cache = _LruCache()
        self._pack_cache = _LruCache()
        self._cycle_cache: dict = {}

    # -- functional pipeline -------------------------------------------------

    def features(self, document: CompressedDocument) -> dict:
        """FE output: sparse features incl. software-computed ones."""
        cached = self._feature_cache.get(document.doc_id)
        if cached is None:
            cached = self.extractor.extract(document)
            self._feature_cache.put(document.doc_id, cached)
        return cached

    def ffe_values(self, document: CompressedDocument, model: RankingModel) -> dict:
        """Features merged with metafeatures and FFE results."""
        key = (document.doc_id, model.model_id)
        cached = self._ffe_cache.get(key)
        if cached is None:
            merged = dict(self.features(document))
            stage0 = FfeProcessor(model.ffe_stage0).evaluate_only(merged)
            merged.update(stage0)
            stage1 = FfeProcessor(model.ffe_stage1).evaluate_only(merged)
            merged.update(stage1)
            cached = merged
            self._ffe_cache.put(key, cached)
        return cached

    def packed(self, document: CompressedDocument, model: RankingModel) -> list:
        """The Compression stage's dense vector."""
        key = (document.doc_id, model.model_id)
        cached = self._pack_cache.get(key)
        if cached is None:
            cached = model.compression.pack(self.ffe_values(document, model))
            self._pack_cache.put(key, cached)
        return cached

    def bank_partial(
        self, document: CompressedDocument, model: RankingModel, bank: int
    ) -> float:
        return model.scorer.evaluate_bank(bank, self.packed(document, model))

    def score(self, document: CompressedDocument, model: RankingModel) -> float:
        """The full pipeline score (what software computes directly)."""
        return model.scorer.evaluate(self.packed(document, model))

    def model_for(self, document: CompressedDocument) -> RankingModel:
        return self.library[document.model_id]

    # -- timing metadata --------------------------------------------------------

    def ffe_stage_cycles(self, model: RankingModel, stage: int) -> int:
        """Cycle count of one FFE stage for ``model``.

        FFE timing is data-independent (predicated execution, static
        instruction streams), so it is computed once per (model, stage)
        with an empty feature vector and cached.
        """
        key = (model.model_id, stage)
        if key not in self._cycle_cache:
            program = model.ffe_stage0 if stage == 0 else model.ffe_stage1
            result = FfeProcessor(program).execute({})
            self._cycle_cache[key] = result.cycles
        return self._cycle_cache[key]
