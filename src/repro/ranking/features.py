"""Feature Extraction: 43 parallel feature state machines (§4.4).

The FE stage computes numeric scores for "features" of the query ×
document combination.  The hit vector streams through a Stream
Processing FSM which fans control/data tokens out to 43 unique feature
state machines working in parallel (MISD); a Feature Gathering Network
coalesces their non-zero outputs.  Some features produce one value per
(stream, query-term) pair, some one per stream, some one per request —
up to 4,484 feature slots total.

Functionally, this module is the *reference implementation* shared by
the FPGA role and the software baseline: one streaming pass builds
per-(stream, term) aggregates (the Stream Processing FSM), and each of
the 43 named machines maps aggregates to its feature values (the
parallel FSMs).  Timing is modelled separately in the role.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import math

from repro.hardware.constants import MAX_DYNAMIC_FEATURES
from repro.ranking.documents import (
    CompressedDocument,
    MAX_QUERY_TERMS,
    MAX_STREAMS,
    StreamHits,
)

MAX_SW_FEATURES = 64
SW_FEATURE_BASE = MAX_DYNAMIC_FEATURES  # software features live above HW slots
TOTAL_FEATURE_SPACE = MAX_DYNAMIC_FEATURES + MAX_SW_FEATURES


# --- streaming aggregates (the Stream Processing FSM) -------------------------


@dataclasses.dataclass
class TermAggregate:
    """Single-pass state for one (stream, term) pair."""

    count: int = 0
    first_pos: int = -1
    last_pos: int = -1
    min_gap: int = 1 << 30
    max_gap: int = 0
    gap_sum: int = 0
    gap_sq_sum: float = 0.0
    run_length: int = 0
    best_run: int = 0
    property_sum: int = 0
    weighted_tf: float = 0.0
    capitalized: int = 0
    anchor: int = 0
    first_half: int = 0
    second_half: int = 0
    inverse_pos_sum: float = 0.0
    last_quarter: int = 0
    near_other_term: int = 0
    min_cross_gap: int = 1 << 30
    window_hits: int = 0
    best_window: int = 0
    window_start_pos: int = 0


@dataclasses.dataclass
class StreamAggregate:
    """Single-pass state for one stream."""

    stream_id: int = 0
    length: int = 0
    tuple_count: int = 0
    delta_sum: int = 0
    two_byte_tuples: int = 0
    adjacent_pairs: int = 0
    with_properties: int = 0
    terms: dict = dataclasses.field(default_factory=dict)  # term -> TermAggregate

    def term(self, index: int) -> TermAggregate:
        if index not in self.terms:
            self.terms[index] = TermAggregate()
        return self.terms[index]


def stream_pass(stream: StreamHits) -> StreamAggregate:
    """One pass over a stream's tuples, updating all aggregates.

    This is the Stream Processing FSM: it walks tuples at 1–2 tokens
    per clock on the FPGA; here it produces the aggregate state every
    feature machine reads.
    """
    agg = StreamAggregate(stream_id=stream.stream_id, length=max(stream.length, 1))
    position = 0
    previous_term = -1
    previous_pos = -1
    half = agg.length / 2
    quarter = 3 * agg.length / 4
    for hit in stream.tuples:
        position += hit.delta
        agg.tuple_count += 1
        agg.delta_sum += hit.delta
        if hit.encoded_size == 2:
            agg.two_byte_tuples += 1
        if hit.delta == 1:
            agg.adjacent_pairs += 1
        if hit.properties:
            agg.with_properties += 1
        term = agg.term(hit.term_index)
        if term.first_pos < 0:
            term.first_pos = position
        else:
            gap = position - term.last_pos
            term.min_gap = min(term.min_gap, gap)
            term.max_gap = max(term.max_gap, gap)
            term.gap_sum += gap
            term.gap_sq_sum += float(gap) * gap
        # Windowed density: hits within a trailing 64-token window.
        if position - term.window_start_pos > 64:
            term.window_start_pos = position
            term.window_hits = 0
        term.window_hits += 1
        term.best_window = max(term.best_window, term.window_hits)
        if hit.delta == 1 and previous_term == hit.term_index:
            term.run_length += 1
        else:
            term.run_length = 1
        term.best_run = max(term.best_run, term.run_length)
        term.count += 1
        term.last_pos = position
        term.property_sum += hit.properties
        term.weighted_tf += (1 + (hit.properties & 0xF)) / 16.0
        if hit.properties & 0x1:
            term.capitalized += 1
        if hit.properties & 0x2:
            term.anchor += 1
        if position <= half:
            term.first_half += 1
        else:
            term.second_half += 1
        term.inverse_pos_sum += 1.0 / (1.0 + position)
        if position > quarter:
            term.last_quarter += 1
        if previous_term >= 0 and previous_term != hit.term_index:
            term.near_other_term += 1 if (position - previous_pos) <= 8 else 0
            term.min_cross_gap = min(term.min_cross_gap, position - previous_pos)
        previous_term = hit.term_index
        previous_pos = position
    return agg


# --- the 43 feature machines ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FeatureMachine:
    """One of the 43 named state machines.

    ``kind`` determines the output granularity: ``per_term`` machines
    emit one value per (stream, term); ``per_stream`` one per stream;
    ``global`` one per request.
    """

    name: str
    kind: str  # "per_term" | "per_stream" | "global"
    compute: collections.abc.Callable


def _tf(term: TermAggregate) -> float:
    return float(term.count)


PER_TERM_MACHINES = [
    FeatureMachine("NumberOfOccurrences", "per_term", lambda s, t: _tf(t)),
    FeatureMachine(
        "FirstOccurrence", "per_term", lambda s, t: t.first_pos / s.length
    ),
    FeatureMachine("LastOccurrence", "per_term", lambda s, t: t.last_pos / s.length),
    FeatureMachine(
        "MeanGap",
        "per_term",
        lambda s, t: t.gap_sum / (t.count - 1) if t.count > 1 else 0.0,
    ),
    FeatureMachine(
        "MinGap", "per_term", lambda s, t: float(t.min_gap) if t.count > 1 else 0.0
    ),
    FeatureMachine("MaxGap", "per_term", lambda s, t: float(t.max_gap)),
    FeatureMachine(
        "TfIdfApprox",
        "per_term",
        lambda s, t: _tf(t) * math.log(s.length / (_tf(t) + 1.0) + 1.0),
    ),
    FeatureMachine("SaturatingTfK12", "per_term", lambda s, t: _tf(t) / (_tf(t) + 1.2)),
    FeatureMachine("SaturatingTfK20", "per_term", lambda s, t: _tf(t) / (_tf(t) + 2.0)),
    FeatureMachine(
        "Bm25Core",
        "per_term",
        lambda s, t: _tf(t) * 2.2 / (_tf(t) + 1.2 * (0.25 + 0.75 * s.length / 1000.0)),
    ),
    FeatureMachine("NormalizedTf", "per_term", lambda s, t: _tf(t) / s.length),
    FeatureMachine("LogTf", "per_term", lambda s, t: math.log(1.0 + _tf(t))),
    FeatureMachine(
        "PositionSpread",
        "per_term",
        lambda s, t: (t.last_pos - t.first_pos) / s.length,
    ),
    FeatureMachine(
        "EarlyOccurrenceBoost",
        "per_term",
        lambda s, t: math.exp(-t.first_pos / 100.0),
    ),
    FeatureMachine("WindowDensity64", "per_term", lambda s, t: float(t.best_window)),
    FeatureMachine("PropertyWeightedTf", "per_term", lambda s, t: t.weighted_tf),
    FeatureMachine("CapitalizedHits", "per_term", lambda s, t: float(t.capitalized)),
    FeatureMachine("AnchorHits", "per_term", lambda s, t: float(t.anchor)),
    FeatureMachine(
        "TitleBoost",
        "per_term",
        lambda s, t: _tf(t) * (2.0 if s.stream_id == 0 else 0.5),
    ),
    FeatureMachine(
        "FirstHitIsEarly", "per_term", lambda s, t: 1.0 if 0 <= t.first_pos < 10 else 0.0
    ),
    FeatureMachine(
        "GapVariance",
        "per_term",
        lambda s, t: max(
            t.gap_sq_sum / (t.count - 1) - (t.gap_sum / (t.count - 1)) ** 2, 0.0
        )
        if t.count > 1
        else 0.0,
    ),
    FeatureMachine("LongestRun", "per_term", lambda s, t: float(t.best_run)),
    FeatureMachine(
        "MinCrossTermGap",
        "per_term",
        lambda s, t: float(t.min_cross_gap) if t.min_cross_gap < (1 << 30) else 0.0,
    ),
    FeatureMachine("CrossTermCooccur", "per_term", lambda s, t: float(t.near_other_term)),
    FeatureMachine(
        "OrdinalBalance",
        "per_term",
        lambda s, t: (t.first_half - t.second_half) / (_tf(t) + 1.0),
    ),
    FeatureMachine(
        "GapLogSum",
        "per_term",
        lambda s, t: math.log(1.0 + t.gap_sum) if t.gap_sum else 0.0,
    ),
    FeatureMachine("TfSquared", "per_term", lambda s, t: _tf(t) ** 2),
    FeatureMachine(
        "InverseFirstPosition", "per_term", lambda s, t: 1.0 / (1.0 + t.first_pos)
    ),
    FeatureMachine(
        "HitFraction",
        "per_term",
        lambda s, t: _tf(t) / s.tuple_count if s.tuple_count else 0.0,
    ),
    FeatureMachine("WeightedPositionSum", "per_term", lambda s, t: t.inverse_pos_sum),
    FeatureMachine("LastQuarterHits", "per_term", lambda s, t: float(t.last_quarter)),
    FeatureMachine(
        "PropertySum", "per_term", lambda s, t: t.property_sum / 65536.0
    ),
]

PER_STREAM_MACHINES = [
    FeatureMachine("StreamTupleCount", "per_stream", lambda s: float(s.tuple_count)),
    FeatureMachine("StreamLength", "per_stream", lambda s: float(s.length)),
    FeatureMachine(
        "StreamCoverage",
        "per_stream",
        lambda s: len([t for t in s.terms.values() if t.count]) / MAX_QUERY_TERMS,
    ),
    FeatureMachine(
        "StreamHitDensity", "per_stream", lambda s: s.tuple_count / s.length
    ),
    FeatureMachine(
        "DistinctTermCount", "per_stream", lambda s: float(len(s.terms))
    ),
    FeatureMachine(
        "MaxTermTf",
        "per_stream",
        lambda s: float(max((t.count for t in s.terms.values()), default=0)),
    ),
    FeatureMachine(
        "MeanDelta",
        "per_stream",
        lambda s: s.delta_sum / s.tuple_count if s.tuple_count else 0.0,
    ),
    FeatureMachine(
        "TwoByteTupleFraction",
        "per_stream",
        lambda s: s.two_byte_tuples / s.tuple_count if s.tuple_count else 0.0,
    ),
    FeatureMachine("AdjacencyPairs", "per_stream", lambda s: float(s.adjacent_pairs)),
    FeatureMachine(
        "StreamPropertyRate",
        "per_stream",
        lambda s: s.with_properties / s.tuple_count if s.tuple_count else 0.0,
    ),
]

GLOBAL_MACHINES = [
    FeatureMachine(
        "QueryTermCount", "global", lambda doc: doc.num_query_terms / MAX_QUERY_TERMS
    ),
]

ALL_MACHINES = PER_TERM_MACHINES + PER_STREAM_MACHINES + GLOBAL_MACHINES
assert len(ALL_MACHINES) == 43, f"expected 43 machines, have {len(ALL_MACHINES)}"


class FeatureLayout:
    """Maps (machine, stream, term) to feature-slot indices.

    Per-term machines own ``MAX_STREAMS * MAX_QUERY_TERMS`` slots each,
    per-stream machines ``MAX_STREAMS``, global machines one.  The
    layout fits inside the 4,484-slot dynamic-feature space the paper
    reports (§4.4); software-computed features occupy slots above it.
    """

    def __init__(self) -> None:
        self.bases: dict[str, int] = {}
        cursor = 0
        for machine in PER_TERM_MACHINES:
            self.bases[machine.name] = cursor
            cursor += MAX_STREAMS * MAX_QUERY_TERMS
        for machine in PER_STREAM_MACHINES:
            self.bases[machine.name] = cursor
            cursor += MAX_STREAMS
        for machine in GLOBAL_MACHINES:
            self.bases[machine.name] = cursor
            cursor += 1
        self.dynamic_slots = cursor
        if cursor > MAX_DYNAMIC_FEATURES:
            raise ValueError(
                f"layout needs {cursor} slots, exceeding {MAX_DYNAMIC_FEATURES}"
            )

    def per_term_slot(self, machine: str, stream_id: int, term_index: int) -> int:
        return self.bases[machine] + stream_id * MAX_QUERY_TERMS + term_index

    def per_stream_slot(self, machine: str, stream_id: int) -> int:
        return self.bases[machine] + stream_id

    def global_slot(self, machine: str) -> int:
        return self.bases[machine]

    @staticmethod
    def software_slot(feature_id: int) -> int:
        if not 0 <= feature_id < MAX_SW_FEATURES:
            raise ValueError(f"software feature id {feature_id} out of range")
        return SW_FEATURE_BASE + feature_id


class FeatureExtractor:
    """Runs all 43 machines over a request; shared by HW and SW paths."""

    def __init__(self, layout: FeatureLayout | None = None):
        self.layout = layout or FeatureLayout()

    def extract(self, document: CompressedDocument) -> dict[int, float]:
        """Sparse {slot: value} with only non-zero outputs (§4.4),
        including the request's software-computed features."""
        values: dict[int, float] = {}
        layout = self.layout
        for stream in document.streams:
            agg = stream_pass(stream)
            for machine in PER_TERM_MACHINES:
                for term_index, term_agg in agg.terms.items():
                    if term_index >= MAX_QUERY_TERMS:
                        continue
                    value = machine.compute(agg, term_agg)
                    if value != 0.0:
                        slot = layout.per_term_slot(
                            machine.name, agg.stream_id, term_index
                        )
                        values[slot] = value
            for machine in PER_STREAM_MACHINES:
                value = machine.compute(agg)
                if value != 0.0:
                    values[layout.per_stream_slot(machine.name, agg.stream_id)] = value
        for machine in GLOBAL_MACHINES:
            value = machine.compute(document)
            if value != 0.0:
                values[layout.global_slot(machine.name)] = value
        for feature_id, value in document.software_features:
            if value != 0.0:
                values[FeatureLayout.software_slot(feature_id)] = value
        return values

    def extraction_tokens(self, document: CompressedDocument) -> int:
        """Token count driving the FE stage's cycle model (§4.4)."""
        return document.total_tuples
