"""Ranking models and the model library (§4.3).

"There are many different sets of features, free forms, and scorers.
We call these different sets *models*.  Different models are selected
based on each query, and can vary for language (e.g. Spanish, English,
Chinese), query type, or for trying out experimental models."

A :class:`RankingModel` bundles: the two FFE stage programs (stage 0
computes *metafeatures* — the paper's mechanism for splitting the
longest expressions across FPGAs — consumed by stage 1), the
compression map, and the three-bank tree scorer.  Models synthesize
deterministically from a seed, and report the per-stage memory
footprints that drive Model Reload timing (up to 250 µs, §4.3).
"""

from __future__ import annotations

import collections.abc
import dataclasses
import random

from repro.ranking.compression import CompressionMap
from repro.ranking.features import (
    FeatureLayout,
    MAX_SW_FEATURES,
    PER_STREAM_MACHINES,
    PER_TERM_MACHINES,
)
from repro.ranking.documents import MAX_QUERY_TERMS, MAX_STREAMS
from repro.ranking.ffe import (
    BinOp,
    Const,
    Expr,
    Feature,
    FfeCompiler,
    FfeProgram,
    IfThenElse,
    Metafeature,
    UnOp,
    assemble,
)
from repro.ranking.ffe.expr import METAFEATURE_BASE
from repro.ranking.scoring import (
    BoostedTreeScorer,
    DecisionTree,
    NeuralScorer,
    TreeNode,
)
from repro.sim.rng import RngStreams

# FFE results live above metafeatures in the slot space.
FFE_RESULT_BASE = 1 << 17


@dataclasses.dataclass
class ModelFootprint:
    """Bytes each pipeline stage reloads from DRAM on a model switch."""

    fe_bytes: int
    ffe0_bytes: int
    ffe1_bytes: int
    compression_bytes: int
    scoring_bytes: tuple  # one per bank

    def stage_bytes(self, stage: str) -> int:
        if stage == "fe":
            return self.fe_bytes
        if stage == "ffe0":
            return self.ffe0_bytes
        if stage == "ffe1":
            return self.ffe1_bytes
        if stage == "compress":
            return self.compression_bytes
        if stage.startswith("score"):
            return self.scoring_bytes[int(stage[-1])]
        return 0


@dataclasses.dataclass
class RankingModel:
    """One complete model: FFE programs + compression + scorer."""

    model_id: int
    name: str
    language: str
    ffe_stage0: FfeProgram  # emits metafeatures
    ffe_stage1: FfeProgram  # emits final FFE values
    compression: CompressionMap
    scorer: BoostedTreeScorer
    footprint: ModelFootprint = None  # computed in __post_init__

    def __post_init__(self) -> None:
        if self.footprint is None:
            self.footprint = ModelFootprint(
                fe_bytes=64 * 1024,  # per-model FE parameter tables
                ffe0_bytes=8 * self.ffe_stage0.instruction_count,
                ffe1_bytes=8 * self.ffe_stage1.instruction_count,
                compression_bytes=self.compression.table_bytes(),
                scoring_bytes=tuple(
                    12 * self.scorer.bank_node_count(i) for i in range(3)
                ),
            )


class _ExpressionSynthesizer:
    """Deterministic random FFE expressions over the feature space."""

    def __init__(self, rng: random.Random, layout: FeatureLayout):
        self.rng = rng
        self.layout = layout

    def feature_ref(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.85:
            machine = self.rng.choice(PER_TERM_MACHINES)
            slot = self.layout.per_term_slot(
                machine.name,
                self.rng.randrange(MAX_STREAMS),
                self.rng.randrange(MAX_QUERY_TERMS),
            )
        elif roll < 0.95:
            machine = self.rng.choice(PER_STREAM_MACHINES)
            slot = self.layout.per_stream_slot(
                machine.name, self.rng.randrange(MAX_STREAMS)
            )
        else:
            slot = FeatureLayout.software_slot(self.rng.randrange(MAX_SW_FEATURES))
        return Feature(slot)

    def expression(self, depth: int, metafeature_pool: int = 0) -> Expr:
        if depth <= 0:
            roll = self.rng.random()
            if roll < 0.15:
                return Const(round(self.rng.uniform(-4.0, 4.0), 3))
            if metafeature_pool and roll < 0.30:
                return Metafeature(self.rng.randrange(metafeature_pool))
            return self.feature_ref()
        roll = self.rng.random()
        if roll < 0.62:
            op = self.rng.choice(["add", "sub", "mul", "mul", "add"])
            return BinOp(
                op,
                self.expression(depth - 1, metafeature_pool),
                self.expression(depth - 1, metafeature_pool),
            )
        if roll < 0.74:
            op = self.rng.choice(["div", "pow", "min", "max"])
            return BinOp(
                op,
                self.expression(depth - 1, metafeature_pool),
                self.expression(depth - 2, metafeature_pool),
            )
        if roll < 0.88:
            op = self.rng.choice(["ln", "exp", "abs", "neg"])
            return UnOp(op, self.expression(depth - 1, metafeature_pool))
        return IfThenElse(
            cmp=self.rng.choice(["lt", "le", "eq"]),
            left=self.expression(depth - 2, metafeature_pool),
            right=Const(round(self.rng.uniform(0.0, 4.0), 3)),
            then=self.expression(depth - 1, metafeature_pool),
            orelse=self.expression(depth - 2, metafeature_pool),
        )


def synthesize_model(
    model_id: int,
    name: str,
    language: str = "en",
    seed: int | None = None,
    metafeatures: int = 48,
    stage1_expressions: int = 1_200,
    trees: int = 600,
    tree_depth: int = 6,
    scorer_kind: str = "trees",
    layout: FeatureLayout | None = None,
) -> RankingModel:
    """Build a deterministic synthetic model of realistic proportions.

    The defaults give "thousands of FFEs" across the two stages and a
    tree ensemble whose three banks dominate scoring-FPGA RAM, matching
    the paper's qualitative description.
    """
    root = seed if seed is not None else model_id * 7919 + 13
    rng = RngStreams(root).stream(f"model:{model_id}")
    layout = layout or FeatureLayout()
    synth = _ExpressionSynthesizer(rng, layout)
    compiler = FfeCompiler()

    # Metafeatures: the deepest expressions, computed upstream (§4.5 —
    # "the longest latency expressions are split across multiple FPGAs").
    meta_compiled = [
        compiler.compile(synth.expression(depth=5), METAFEATURE_BASE + i)
        for i in range(metafeatures)
    ]
    # Balance the two FFE FPGAs: stage 0 carries the metafeatures plus
    # half the bulk; stage 1 the other half.  Stage-0 bulk expressions
    # must not read metafeatures (they compute in the same pass); the
    # stage-1 half may — that is the point of the split.
    half = stage1_expressions // 2
    bulk_compiled = [
        compiler.compile(
            synth.expression(
                depth=rng.choice([1, 2, 2, 3, 3, 4]),
                metafeature_pool=0 if i < half else metafeatures,
            ),
            FFE_RESULT_BASE + i,
        )
        for i in range(stage1_expressions)
    ]
    ffe_stage0 = assemble(meta_compiled + bulk_compiled[:half])
    ffe_stage1 = assemble(bulk_compiled[half:])

    # The scorer reads raw features, software features and FFE results.
    candidate_slots = (
        [synth.feature_ref().slot for _ in range(600)]
        + [FFE_RESULT_BASE + rng.randrange(stage1_expressions) for _ in range(600)]
        + [METAFEATURE_BASE + i for i in range(metafeatures)]
    )
    used = sorted(set(candidate_slots))
    compression = CompressionMap(used)

    def make_tree(depth: int) -> TreeNode:
        if depth == 0 or rng.random() < 0.12:
            return TreeNode(value=round(rng.uniform(-1.0, 1.0), 4))
        return TreeNode(
            feature=rng.randrange(len(compression)),
            threshold=round(rng.uniform(-2.0, 6.0), 3),
            left=make_tree(depth - 1),
            right=make_tree(depth - 1),
        )

    if scorer_kind == "trees":
        scorer = BoostedTreeScorer(
            [DecisionTree(make_tree(tree_depth)) for _ in range(trees)],
            learning_rate=0.1,
        )
    elif scorer_kind == "mlp":
        # A RankNet-style two-layer net over a sparse slice of the
        # packed vector; hidden width scales with the tree budget.
        hidden = max(6, trees // 10)
        width = len(compression)
        weights = []
        for _ in range(hidden):
            row = [0.0] * width
            for _ in range(max(4, width // 50)):
                row[rng.randrange(width)] = round(rng.uniform(-0.5, 0.5), 4)
            weights.append(row)
        scorer = NeuralScorer(
            weights=weights,
            hidden_bias=[round(rng.uniform(-0.2, 0.2), 4) for _ in range(hidden)],
            output_weights=[round(rng.uniform(-1.0, 1.0), 4) for _ in range(hidden)],
            output_bias=round(rng.uniform(-0.5, 0.5), 4),
        )
    else:
        raise ValueError(f"unknown scorer kind {scorer_kind!r}")
    return RankingModel(
        model_id=model_id,
        name=name,
        language=language,
        ffe_stage0=ffe_stage0,
        ffe_stage1=ffe_stage1,
        compression=compression,
        scorer=scorer,
    )


class ModelLibrary:
    """The models a deployment serves, keyed by model id."""

    def __init__(self, models: collections.abc.Iterable[RankingModel]):
        self.models = {model.model_id: model for model in models}
        if not self.models:
            raise ValueError("model library cannot be empty")

    def __getitem__(self, model_id: int) -> RankingModel:
        return self.models[model_id]

    def __contains__(self, model_id: int) -> bool:
        return model_id in self.models

    def __len__(self) -> int:
        return len(self.models)

    def ids(self) -> list:
        return sorted(self.models)

    @classmethod
    def default(cls, scale: float = 1.0, layout: FeatureLayout | None = None) -> "ModelLibrary":
        """Four production-flavoured models (three languages + one
        experimental), scaled by ``scale`` for cheaper test runs."""
        layout = layout or FeatureLayout()

        def scaled(n: int) -> int:
            return max(8, int(n * scale))

        specs = [
            (0, "en-main", "en"),
            (1, "es-main", "es"),
            (2, "zh-main", "zh"),
            (3, "en-experimental", "en"),
        ]
        return cls(
            synthesize_model(
                model_id,
                name,
                language,
                metafeatures=scaled(48),
                stage1_expressions=scaled(1_200),
                trees=scaled(600),
                layout=layout,
            )
            for model_id, name, language in specs
        )
