"""The Bing ranking application offloaded to the fabric (§4).

Functional pipeline: compressed {document, query} requests flow through
Feature Extraction (43 parallel state machines), two Free-Form
Expression stages (a custom 60-core multithreaded soft processor), a
Compression stage, and a three-FPGA machine-learned scorer, producing a
single float score per document.  A Queue Manager at the pipeline head
batches queries by model to amortize Model Reload.

The **same functional code** backs the FPGA roles and the pure-software
baseline ranker, so scores are bit-identical between the two paths —
mirroring the paper's "results identical to software" property.  Only
the timing models differ.
"""

from repro.ranking.documents import (
    CompressedDocument,
    DocumentCodec,
    HitTuple,
    Query,
    StreamHits,
)
from repro.ranking.features import FeatureExtractor, FeatureLayout
from repro.ranking.models import ModelLibrary, RankingModel
from repro.ranking.scoring import (
    BoostedTreeScorer,
    DecisionTree,
    NeuralScorer,
    TreeNode,
)
from repro.ranking.software_ranker import SoftwareRanker
from repro.ranking.pipeline import RankingPipeline, ranking_service

__all__ = [
    "BoostedTreeScorer",
    "CompressedDocument",
    "DecisionTree",
    "DocumentCodec",
    "FeatureExtractor",
    "FeatureLayout",
    "HitTuple",
    "ModelLibrary",
    "NeuralScorer",
    "Query",
    "RankingModel",
    "RankingPipeline",
    "SoftwareRanker",
    "StreamHits",
    "TreeNode",
    "ranking_service",
]
