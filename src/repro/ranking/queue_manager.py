"""The Queue Manager (§4.3).

Requests arriving at the pipeline head are placed in a DRAM queue per
model.  The QM drains one queue at a time; when the current queue is
empty — or a switch timeout expires while other models wait — it moves
to the next non-empty queue and sends a **Model Reload** command down
the pipeline first.  Reload costs up to 250 µs, an order of magnitude
more than a document, so batching queries by model is crucial.

Two policies are provided for the ablation benchmark:

* ``batch`` — the paper's design: drain per-model queues;
* ``fifo``  — strawman: strict arrival order, reloading on every
  model change.
"""

from __future__ import annotations

import collections.abc
from collections import deque

from repro.sim import Engine, Event
from repro.sim.units import US


class QueueManager:
    """Per-model queueing and dispatch at the pipeline head."""

    def __init__(
        self,
        engine: Engine,
        dispatch: collections.abc.Callable,  # generator: yield-from'able per packet
        reload_model: collections.abc.Callable,  # generator: model switch actions
        policy: str = "batch",
        switch_timeout_ns: float = 500 * US,
        max_batch: int = 512,
    ):
        if policy not in ("batch", "fifo"):
            raise ValueError(f"unknown queue-manager policy {policy!r}")
        self.engine = engine
        self.dispatch = dispatch
        self.reload_model = reload_model
        self.policy = policy
        self.switch_timeout_ns = switch_timeout_ns
        self.max_batch = max_batch
        self.queues: dict[int, deque] = {}
        self.fifo: deque = deque()
        self.current_model: int | None = None
        self.reload_count = 0
        self.dispatched = 0
        self.enqueued = 0
        self.reloads_by_model: dict[int, int] = {}
        self.dispatched_by_model: dict[int, int] = {}
        self._arrival: Event | None = None
        self._batch_started_ns = 0.0
        # Expendable: the dispatch loop sleeps until the next arrival.
        self.process = engine.process(
            self._run(), name="queue-manager", expendable=True
        )

    # -- producer side ----------------------------------------------------------

    def enqueue(self, model_id: int, packet) -> None:
        """Called by the FE role's receive loop for each request."""
        self.enqueued += 1
        if self.policy == "fifo":
            self.fifo.append((model_id, packet))
        else:
            self.queues.setdefault(model_id, deque()).append(packet)
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    @property
    def backlog(self) -> int:
        if self.policy == "fifo":
            return len(self.fifo)
        return sum(len(q) for q in self.queues.values())

    # -- dispatch loop -------------------------------------------------------------

    def _run(self) -> collections.abc.Generator:
        while True:
            item = self._next_item()
            if item is None:
                self._arrival = self.engine.event(name="qm-arrival")
                yield self._arrival
                continue
            model_id, packet = item
            if model_id != self.current_model:
                self.reload_count += 1
                self.reloads_by_model[model_id] = (
                    self.reloads_by_model.get(model_id, 0) + 1
                )
                yield from self.reload_model(model_id)
                self.current_model = model_id
            yield from self.dispatch(packet)
            self.dispatched += 1
            self.dispatched_by_model[model_id] = (
                self.dispatched_by_model.get(model_id, 0) + 1
            )

    def stats(self) -> dict:
        """Counter snapshot: totals plus the per-model breakdown.

        ``per_model`` maps model id to its reload and dispatch counts —
        the ratio between the two is the effective batch size the QM
        achieved for that model, the quantity §4.3's batching exists to
        maximise.
        """
        per_model = {
            model_id: {
                "reloads": self.reloads_by_model.get(model_id, 0),
                "dispatched": self.dispatched_by_model.get(model_id, 0),
            }
            for model_id in sorted(
                set(self.reloads_by_model) | set(self.dispatched_by_model)
            )
        }
        return {
            "policy": self.policy,
            "enqueued": self.enqueued,
            "dispatched": self.dispatched,
            "reloads": self.reload_count,
            "backlog": self.backlog,
            "per_model": per_model,
        }

    def _next_item(self):
        if self.policy == "fifo":
            return self.fifo.popleft() if self.fifo else None
        # Batch policy: stay on the current model while it has work and
        # its batch/timeout budget lasts; else rotate to the next
        # non-empty queue (round-robin by model id).
        current = self.current_model
        others_waiting = any(
            queue and model_id != current for model_id, queue in self.queues.items()
        )
        timed_out = (
            others_waiting
            and self.engine.now - self._batch_started_ns >= self.switch_timeout_ns
        )
        if current is not None and not timed_out:
            queue = self.queues.get(current)
            if queue and self._batch_remaining > 0:
                self._batch_remaining -= 1
                return current, queue.popleft()
        candidates = sorted(
            model_id for model_id, queue in self.queues.items() if queue
        )
        if not candidates:
            return None
        if current in candidates:
            index = (candidates.index(current) + 1) % len(candidates)
            next_model = candidates[index] if len(candidates) > 1 else current
        else:
            later = [m for m in candidates if current is None or m > current]
            next_model = later[0] if later else candidates[0]
        self._batch_remaining = self.max_batch - 1
        self._batch_started_ns = self.engine.now
        return next_model, self.queues[next_model].popleft()

    _batch_remaining = 0
