"""The Compression stage (§4.2, Figure 5).

One FPGA between the FFEs and the scorers "increases the efficiency of
the scoring engines": the sparse feature space (up to 4,484 dynamic
features + software features + FFE results) is packed into the dense,
model-specific vector the scoring banks index directly.  Mostly RAM
(the slot-mapping tables), little logic — matching Table 1's 64 % RAM
/ 20 % logic for this stage.
"""

from __future__ import annotations

import collections.abc


class CompressionMap:
    """Model-specific packing of sparse feature slots to dense indices."""

    def __init__(self, used_slots: collections.abc.Iterable[int]):
        self.slots = sorted(set(used_slots))
        if not self.slots:
            raise ValueError("compression map needs at least one slot")
        self.index_of = {slot: i for i, slot in enumerate(self.slots)}

    def __len__(self) -> int:
        return len(self.slots)

    def pack(self, values: collections.abc.Mapping[int, float]) -> list:
        """Dense vector in slot order; absent features read 0.0."""
        return [values.get(slot, 0.0) for slot in self.slots]

    def packed_bytes(self) -> int:
        """Wire size of a packed vector (4-byte floats)."""
        return 4 * len(self.slots)

    def table_bytes(self) -> int:
        """Size of the mapping table (Model Reload traffic)."""
        return 8 * len(self.slots)
