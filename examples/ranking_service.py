#!/usr/bin/env python
"""The headline experiment in miniature: FPGA ranking vs software.

Runs the §5 production comparison on one ring: all eight ring servers
inject Poisson traffic into the shared hardware pipeline while a
software-only server handles the same per-server rate, then prints the
latency distributions side by side — the Figure 14/15 story.

Run:  python examples/ranking_service.py
"""

import sys

sys.path.insert(0, "benchmarks")  # reuse the benchmark harness

from bench_harness import (
    RATE_ONE_PER_S,
    build_ring,
    latency_stats,
    open_loop_fpga,
    open_loop_software,
)
from repro.analysis import format_table
from repro.sim.units import MS


def main() -> None:
    rate = 1.0  # the paper's normalized production injection rate
    samples = 800
    per_server = rate * RATE_ONE_PER_S

    print(f"Injection rate {rate:.1f} ({per_server:.0f} docs/s/server), "
          f"{samples} samples per system...")

    print("\n[1/2] FPGA-accelerated ranking (8 servers sharing one ring)...")
    eng, pod, pipeline, pool = build_ring(seed=101)
    fpga = latency_stats(
        open_loop_fpga(eng, pipeline, pod.ring(0), pool, per_server, samples)
    )

    print("[2/2] software-only ranking (12-core server)...")
    eng2, pod2, pipeline2, pool2 = build_ring(seed=102)
    software = latency_stats(
        open_loop_software(
            eng2, pod2.server_at((1, 3)), pipeline2.scoring_engine,
            pool2, per_server, samples,
        )
    )

    rows = []
    for label, get in [
        ("average", lambda s: s.mean),
        ("95th pct", lambda s: s.p95),
        ("99th pct", lambda s: s.p99),
        ("99.9th pct", lambda s: s.p999),
    ]:
        f, s = get(fpga) / MS, get(software) / MS
        rows.append((label, f"{f:.2f}", f"{s:.2f}", f"{f / s:.2f}"))
    print()
    print(format_table(
        ["latency", "FPGA (ms)", "software (ms)", "ratio"],
        rows,
        title="FPGA vs software scoring latency (lower ratio = FPGA wins)",
    ))
    print(f"\nPaper anchor: at rate 1.0 the FPGA's 95th-percentile latency "
          f"is ~29% lower (ratio ~0.71). Measured ratio: "
          f"{fpga.p95 / software.p95:.2f}.")


if __name__ == "__main__":
    main()
