#!/usr/bin/env python
"""FFE playground: write expressions, inspect compilation, count cycles.

Demonstrates the free-form-expression stack of §4.5: the expression
AST, the compiler's pow/idiv/mod expansions, the static-priority
assembler, and the 60-core 4-thread/core processor model with its
shared complex blocks.

Run:  python examples/ffe_playground.py
"""

from repro.ranking.ffe import (
    BinOp,
    Const,
    Feature,
    FfeCompiler,
    FfeProcessor,
    IfThenElse,
    UnOp,
    assemble,
)


def main() -> None:
    compiler = FfeCompiler()

    # A hybrid feature a ranking developer might write: a smoothed,
    # clamped combination of BM25-ish inputs.
    expression = IfThenElse(
        "lt",
        Feature(0),
        Const(0.5),
        Const(0.0),
        UnOp("ln", Const(1.0) + Feature(1) * BinOp("pow", Feature(2), Const(0.5))),
    )
    compiled = compiler.compile(expression, output_slot=0)

    print("Compiled instruction stream:")
    for instr in compiled.instructions:
        complex_marker = "  <- complex block" if instr.is_complex else ""
        print(f"  {instr}{complex_marker}")
    print(f"expected latency: {compiled.expected_latency} cycles\n")

    features = {0: 0.9, 1: 2.0, 2: 4.0}
    print(f"AST evaluation:      {expression.evaluate(features):.6f}")
    program = assemble([compiled], core_count=1, threads_per_core=1)
    result = FfeProcessor(program).execute(features)
    print(f"processor execution: {result.outputs[0]:.6f}")
    print(f"cycles: {result.cycles}, complex ops: {result.complex_ops}\n")

    # Scale up: 480 expressions across the full 60-core processor.
    print("Loading 480 expressions onto the 60-core / 4-thread processor:")
    expressions = []
    for i in range(480):
        expr = UnOp("ln", Const(1.0) + Feature(i % 16) * Const(1.0 + i / 100.0))
        expressions.append(compiler.compile(expr, output_slot=100 + i))
    program = assemble(expressions)  # 60 cores x 4 threads
    result = FfeProcessor(program).execute({i: float(i + 1) for i in range(16)})
    print(f"  {result.instructions_executed} instructions, "
          f"{result.complex_ops} complex ops")
    print(f"  total: {result.cycles} cycles "
          f"({result.time_ns(125.0) / 1000.0:.2f} us at the 125 MHz FFE clock)")
    print(f"  complex-block arbitration stalls: {result.complex_stall_cycles} cycles")

    # The assembler's static priority: longest expressions first.
    slot0 = program.thread(0, 0).expressions[0]
    slot3 = program.thread(0, 3).expressions[0]
    print(f"\nStatic priority: thread-slot 0 head latency "
          f"{slot0.expected_latency} >= slot 3 head latency "
          f"{slot3.expected_latency}")


if __name__ == "__main__":
    main()
