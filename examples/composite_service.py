#!/usr/bin/env python
"""A composite service: one replica spanning two rings over the torus.

The paper's ranking accelerator occupies exactly one 8-FPGA ring, but
the fabric composes services from *groups* of FPGAs (§2.3) — a larger
accelerator spans several rings reached over the torus.  This example
declares `rings_per_replica=2`: the scheduler places each replica as an
all-or-nothing *gang* of rings on adjacent pods, and the control plane
wraps them in a `CompositeDeployment` that chains the member rings into
one request path (stage 0's response rides to stage 1's head node;
latency is end-to-end).

Then the §3.5 failure story, composite-style: killing ONE member ring
fails the WHOLE replica (health is the min over members), the open-loop
front door sheds arrivals during the outage instead of crashing, and
the watchdog re-places the gang — cordoning only the dead member's
slot — so throughput recovers without an operator.

Run:  python examples/composite_service.py
"""

from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine
from repro.sim.units import MS, SEC, US
from repro.workloads import OpenLoopInjector, PoissonArrivals


def print_status(manager, handle) -> None:
    status = handle.status()
    print(
        f"  {status.service}: {status.ready_replicas}/"
        f"{status.desired_replicas} replicas ready; cordoned slots: "
        f"{manager.scheduler.cordoned_slots or 'none'}"
    )
    for ring in status.rings:
        chain = " -> ".join(
            f"pod{slot.pod_id}/ring{slot.ring_x}" for slot in ring.member_slots
        )
        print(f"    [{chain}]  health {ring.health:.2f}, {ring.completed} completed")


def main() -> None:
    print("Building a 3-pod datacenter (2 rings per pod)...")
    engine = Engine(seed=23)
    datacenter = Datacenter(
        engine, num_pods=3, topology=TorusTopology(width=2, height=3)
    )
    manager = ClusterManager(datacenter)

    print("Declaring: 1 replica spanning 2 rings (a gang on adjacent pods)...")
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(delay_ns=20_000.0),
            replicas=1,
            rings_per_replica=2,
            request_timeout_ns=40 * MS,
            health_period_ns=0.15 * SEC,
        )
    )
    print_status(manager, handle)

    print("\nPhase 1: open-loop Poisson load, 5 K req/s through the chain...")
    pool = [object() for _ in range(16)]
    traffic = OpenLoopInjector(
        engine,
        handle,
        PoissonArrivals(5_000.0),
        pool,
        max_queue_depth=256,
        timeout_ns=40 * MS,
        seed_tag="composite",
    )
    done = traffic.run(9_000)  # arrivals span ~1.8 s
    engine.run(until=engine.now + 0.3 * SEC)
    stats = traffic.stats
    print(
        f"  {stats.completed} completed so far, p50 "
        f"{stats.stats().p50 / US:.0f} us end-to-end (both 20 us stages "
        "+ the inter-pod hop)"
    )

    victim = handle.deployments[0].members[1]
    print(f"\nPhase 2: killing member ring {victim.name} (exhausts its spares)...")
    ClusterFailureInjector(datacenter).kill_ring(victim)
    before_rejected = stats.rejected
    engine.run_until(done)
    print(
        f"  outage window: {stats.rejected - before_rejected} arrivals shed "
        "at the front door (no crash) while the watchdog re-placed the gang"
    )
    print_status(manager, handle)

    final = stats.stats()
    print(
        f"\nDone: {stats.completed}/{stats.offered} completed, "
        f"{stats.rejected} shed, {stats.timeouts} timed out; "
        f"p99 {final.p99 / US:.0f} us."
    )


if __name__ == "__main__":
    main()
