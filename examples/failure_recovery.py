#!/usr/bin/env python
"""Failure handling, closed-loop: the control plane keeps a declared
service serving through hardware failures (§3.4–§3.5).

Declares two ranking replicas behind a weighted-health front end, then
injects failures of increasing severity while the ClusterManager's
watchdog runs:

1. an FPGA hardware fault on one ring — the Health Monitor's error
   vector triggers a Mapping Manager ring rotation onto the spare, the
   ring's health weight drops, and the front end shifts load;
2. a cable-assembly failure that kills the same ring outright —
   reconciliation releases it, cordons the slot for manual service,
   and re-places the replica on a fresh ring.

No code here touches HealthMonitor, MappingManager, or LoadBalancer:
the spec declares, the watchdog closes the loop.

Run:  python examples/failure_recovery.py
"""

from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.services import FailureKind
from repro.sim.units import SEC


def show(handle) -> None:
    status = handle.status()
    print(f"  {status.ready_replicas}/{status.desired_replicas} replicas ready")
    for ring in status.rings:
        print(f"    {ring.name}: health {ring.health:.2f} @ {ring.slot}")


def main() -> None:
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=3
    )
    print("Declaring 2 ranking replicas, weighted-health front end,")
    print("2 s health watchdog...")
    cluster = fabric.deploy_ranking_cluster(
        rings=2,
        balancing_policy="weighted_health",
        model_scale=0.1,
        health_period_ns=2 * SEC,
    )
    handle = cluster.handle
    show(handle)

    victim_ring = handle.deployments[0]
    victim_slot = fabric.manager().scheduler.slot_of(victim_ring)
    injector = fabric.failure_injector()

    print("\n1. FPGA hardware fault at the ffe1 node of replica 0...")
    victim = injector.inject_role(
        victim_ring, FailureKind.FPGA_HARDWARE_FAULT, role_name="ffe1"
    )
    fabric.run(until_ns=fabric.engine.now + 6 * SEC)  # watchdog sweeps
    print("  watchdog swept and the Mapping Manager relocated the role")
    assert victim in victim_ring.assignment.excluded, "ring must rotate"
    print(f"  {victim} mapped out; ring rotated onto its spare")
    show(handle)
    print("  (weighted-health now steers proportionally less load here)")

    print("\n2. Cable assembly failure kills the same ring outright...")
    injector.inject_role(victim_ring, FailureKind.CABLE_ASSEMBLY_FAILURE)
    fabric.run(until_ns=fabric.engine.now + 8 * SEC)
    status = handle.status()
    assert status.ready_replicas == 2, "reconciliation must restore replicas"
    assert victim_slot in fabric.manager().scheduler.cordoned_slots
    print(f"  {victim_slot} released and cordoned for manual service;")
    print("  replacement replica placed on a fresh ring:")
    show(handle)

    print("\n3. Traffic still completes on the reconciled service:")
    from repro.workloads.traces import TraceGenerator

    generator = TraceGenerator(seed=17)
    pool = [generator.request() for _ in range(6)]
    for request in pool:
        cluster.scoring_engine.score(
            request.document, cluster.library[request.document.model_id]
        )
    completed = []

    def driver():
        for request in pool:
            response = yield from handle.submit(request)
            completed.append(response)

    fabric.engine.process(driver())
    fabric.engine.run()
    scored = [r for r in completed if r is not None]
    print(f"  {len(scored)}/{len(pool)} requests scored after recovery")
    assert len(scored) == len(pool)

    print("\nDone: the declared service survived a component failure and")
    print("a whole-ring failure with no operator in the loop.")


if __name__ == "__main__":
    main()
