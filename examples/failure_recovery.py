#!/usr/bin/env python
"""Failure handling: ring rotation onto the spare FPGA (§3.4–§3.5).

Deploys the ranking pipeline, verifies it works, kills the FFE1 FPGA,
lets the Health Monitor diagnose it and the Mapping Manager rotate the
ring onto the spare, then shows the pipeline serving traffic again —
and that the TX/RX-Halt protocol kept neighbours uncorrupted.

Run:  python examples/failure_recovery.py
"""

from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.services import FailureInjector, FailureKind
from repro.sim.units import SEC


def inject_and_report(fabric, pipeline, pod, tag):
    pool = pipeline.make_request_pool(3, seed=17)
    done, stats = pipeline.spawn_injector(
        pod.server_at((1, 4)), threads=1, pool=pool, requests_per_thread=3
    )
    fabric.engine.run_until(done)
    print(f"  [{tag}] {stats.completed}/3 requests scored, "
          f"{stats.timeouts} timeouts")
    return stats


def main() -> None:
    fabric = CatapultFabric(
        pods=1, topology=TorusTopology(width=2, height=8), seed=3
    )
    pod = fabric.pod(0)
    pipeline = fabric.deploy_ranking(ring=0, model_scale=0.1)
    print("Deployed. Initial mapping:")
    print(f"  {pipeline.assignment.role_to_node}")

    print("\nBaseline traffic:")
    inject_and_report(fabric, pipeline, pod, "before failure")

    victim = pipeline.assignment.node_of("ffe1")
    print(f"\nInjecting an FPGA hardware fault at {victim} (hosts ffe1)...")
    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, victim)

    print("Health Monitor investigates; Mapping Manager rotates the ring:")
    t0 = fabric.engine.now
    report = fabric.check_health([victim])
    recovery_s = (fabric.engine.now - t0) / SEC
    diagnosis = report.diagnoses[0]
    print(f"  diagnosis: fpga_failed={diagnosis.flags.fpga_failed}, "
          f"needs_relocation={diagnosis.flags.needs_relocation}")
    print(f"  recovery took {recovery_s:.1f} s (reconfiguration-dominated)")
    print(f"  new mapping: {pipeline.assignment.role_to_node}")
    assert victim in pipeline.assignment.excluded

    print("\nTraffic after rotation:")
    stats = inject_and_report(fabric, pipeline, pod, "after rotation")
    assert stats.completed == 3

    print("\nNeighbour corruption check (TX/RX-Halt protocol):")
    corrupted = [
        node
        for node, server in pod.servers.items()
        if server.shell.role is not None and server.shell.role.corrupted
    ]
    print(f"  corrupted roles: {corrupted or 'none'}")
    assert not corrupted
    print("Done: the pipeline survived a hardware failure with no "
          "corruption and seconds of downtime.")


if __name__ == "__main__":
    main()
