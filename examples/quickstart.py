#!/usr/bin/env python
"""Quickstart: deploy the Catapult ranking service and score documents.

Builds a single pod, deploys the eight-FPGA Bing ranking pipeline onto
one torus ring, injects a handful of {document, query} requests from a
neighbouring server, and verifies the scores are bit-identical to the
pure-software ranker — the paper's core functional claim.

Run:  python examples/quickstart.py
"""

from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.ranking.software_ranker import SoftwareRanker
from repro.sim.units import US


def main() -> None:
    print("Building a pod with a 2x8 torus of FPGA-equipped servers...")
    fabric = CatapultFabric(
        pods=1, topology=TorusTopology(width=2, height=8), seed=7
    )
    pod = fabric.pod(0)

    print("Deploying the ranking service to ring 0 (FE, FFE0, FFE1,")
    print("Compress, Score0-2 + spare); Mapping Manager configures all")
    print("FPGAs, then releases RX-Halt...")
    pipeline = fabric.deploy_ranking(ring=0, model_scale=0.1)
    print(f"  roles -> nodes: {pipeline.assignment.role_to_node}")
    print(f"  spare at: {pipeline.assignment.spare_nodes}")

    print("\nScoring 5 documents through the hardware pipeline...")
    pool = pipeline.make_request_pool(5, seed=99)
    injector = pod.server_at((1, 2))
    done, stats = pipeline.spawn_injector(
        injector, threads=2, pool=pool, requests_per_thread=3
    )
    fabric.engine.run_until(done)
    mean_us = sum(stats.latencies_ns) / len(stats.latencies_ns) / US
    print(f"  {stats.completed} responses, mean latency {mean_us:.1f} us")

    print("\nVerifying FPGA scores == software scores (bit-identical)...")
    software = SoftwareRanker(pod.server_at((1, 5)), pipeline.scoring_engine)
    for request in pool:
        model = pipeline.library[request.document.model_id]
        hw_score = pipeline.scoring_engine.score(request.document, model)

        def score(request=request):
            result = yield from software.score_request(request)
            return result

        proc = fabric.engine.process(score())
        fabric.engine.run_until(proc)
        sw_score, _lat = proc.value
        marker = "OK" if sw_score == hw_score else "MISMATCH"
        print(f"  doc {request.document.doc_id:3d}: score {hw_score:+.4f}  [{marker}]")
        assert sw_score == hw_score

    print("\nHealth check on the ring:")
    report = fabric.check_health(pod.topology.ring(0))
    print(f"  {len(report.diagnoses)} machines investigated, "
          f"{len(report.failed_machines)} failures")
    print("Done.")


if __name__ == "__main__":
    main()
