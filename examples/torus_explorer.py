#!/usr/bin/env python
"""Explore the 6x8 torus: routing, cables, miswiring detection (§2.2).

Builds the full 48-server production pod, walks dimension-order routes,
breaks a cable assembly, miswires another pod at integration time, and
shows how the Health Monitor's neighbour-ID probe catches both.

Run:  python examples/torus_explorer.py
"""

from collections import Counter

from repro.fabric import Pod, TorusTopology
from repro.fabric.cables import WiringPlan
from repro.services import HealthMonitor
from repro.sim import Engine


def main() -> None:
    eng = Engine(seed=5)
    topology = TorusTopology()  # the production 6x8
    pod = Pod(eng, topology=topology)
    print(f"Built {pod!r}")
    print(f"  cable assemblies: {len(pod.assemblies)} "
          f"(6 column shells of 8, 8 row shells of 6)")

    # Hop-distance histogram: why a 6x8 torus balances routability.
    hops = Counter()
    nodes = topology.nodes()
    for src in nodes:
        for dst in nodes:
            if src != dst:
                hops[topology.hop_distance(src, dst)] += 1
    print("\nHop-distance histogram (all src->dst pairs):")
    for distance in sorted(hops):
        print(f"  {distance} hops: {hops[distance]:4d} pairs "
              f"{'#' * (hops[distance] // 40)}")
    mean_hops = sum(d * c for d, c in hops.items()) / sum(hops.values())
    print(f"  mean {mean_hops:.2f}, max {max(hops)} — an 8-FPGA ring is one "
          "column wrap")

    # Break a whole cable assembly (a column shell of 8 cables).
    assembly = pod.assemblies["col2"]
    print(f"\nFailing cable assembly {assembly.name} "
          f"({len(assembly.links)} links)...")
    assembly.fail()
    monitor = HealthMonitor(eng, pod)
    report = eng.run_until(monitor.investigate([(2, 0), (2, 4)]))
    for diagnosis in report.diagnoses:
        print(f"  {diagnosis.machine_id}: links down on "
              f"{list(diagnosis.flags.link_down)}")
    assembly.repair()

    # Miswire a second pod at integration time.
    print("\nBuilding a miswired pod (two east-west cables swapped)...")
    wiring = WiringPlan(topology)
    wiring.swap(0, 4)
    bad_pod = Pod(eng, pod_id=1, topology=topology, wiring=wiring)
    bad_monitor = HealthMonitor(eng, bad_pod)
    report = eng.run_until(bad_monitor.investigate(list(bad_pod.servers)))
    mismatches = [
        (d.machine_id, d.flags.neighbor_mismatch)
        for d in report.diagnoses
        if d.flags.neighbor_mismatch
    ]
    print(f"  neighbour-ID mismatches detected on {len(mismatches)} machines:")
    for machine_id, details in mismatches[:4]:
        for port, expected, seen in details:
            print(f"    {machine_id} {port}: expected {expected}, saw {seen}")
    print("\nDone: topology errors are caught by the §3.5 health vector "
          "before service deployment.")


if __name__ == "__main__":
    main()
