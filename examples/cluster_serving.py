#!/usr/bin/env python
"""Cluster serving: many rings, a front-end balancer, open-loop users.

Builds a two-pod datacenter, lets the cluster scheduler spread four
ranking rings across the pods, and drives the front-end load balancer
with open-loop traffic — first steady Poisson arrivals, then a bursty
on/off pattern that admission control has to shed.  This is the
paper's production shape (§2.3) in miniature: the service scales by
adding rings, and the front door spreads "heavy traffic from millions
of users" across them.

Run:  python examples/cluster_serving.py
"""

from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.sim.units import SEC, US
from repro.workloads import BurstyArrivals, OpenLoopInjector, PoissonArrivals
from repro.workloads.traces import TraceGenerator


def main() -> None:
    print("Building a 2-pod datacenter (2x8 torus per pod = 2 rings each)...")
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=11
    )

    print("Scheduler placing 4 ranking rings, policy=spread...")
    cluster = fabric.deploy_ranking_cluster(
        rings=4,
        placement_policy="spread",
        balancing_policy="least_outstanding",
        model_scale=0.1,
    )
    balancer = cluster.balancer
    for decision in cluster.scheduler.decisions:
        print(
            f"  {decision.service} -> pod{decision.slot.pod_id}/"
            f"ring{decision.slot.ring_x} ({decision.spares} spare)"
        )
    report = cluster.scheduler.capacity_report()
    print(
        f"  capacity: {report.occupied_rings}/{report.total_rings} rings "
        f"({report.utilization:.0%}), {report.total_spare_nodes} spare nodes"
    )

    generator = TraceGenerator(seed=42)
    pool = [generator.request() for _ in range(48)]
    for request in pool:  # pre-compute functional scores
        cluster.scoring_engine.score(
            request.document, cluster.library[request.document.model_id]
        )

    print("\nPhase 1: steady Poisson load, 60 K docs/s offered...")
    steady = OpenLoopInjector(
        fabric.engine,
        balancer,
        PoissonArrivals(60_000),
        pool,
        max_queue_depth=256,
        seed_tag="steady",
    )
    started = fabric.engine.now
    stats = fabric.engine.run_until(steady.run(900))
    window = fabric.engine.now - started
    print(
        f"  {stats.completed} scored at {stats.completed * SEC / window:,.0f}/s, "
        f"p50 {stats.stats().p50 / US:.0f} us, p99 {stats.stats().p99 / US:.0f} us, "
        f"{stats.rejected} shed"
    )
    for name, lat in balancer.per_ring_stats().items():
        print(f"    {name}: {lat.count} reqs, p99 {lat.p99 / US:.0f} us")

    print("\nPhase 2: bursty on/off load, 40 K base / 600 K burst docs/s...")
    bursty = OpenLoopInjector(
        fabric.engine,
        balancer,
        BurstyArrivals(
            base_rate_per_s=40_000,
            burst_rate_per_s=600_000,
            period_s=0.01,
        ),
        pool,
        max_queue_depth=128,
        seed_tag="bursty",
    )
    stats = fabric.engine.run_until(bursty.run(1_200))
    print(
        f"  {stats.offered} offered, {stats.admitted} admitted "
        f"({stats.admission_fraction:.0%}), {stats.rejected} shed by "
        f"queue-depth admission control"
    )
    print(
        f"  completed p99 {stats.stats().p99 / US:.0f} us "
        f"(backpressure keeps the admitted tail bounded)"
    )
    print("Done.")


if __name__ == "__main__":
    main()
