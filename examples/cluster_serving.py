#!/usr/bin/env python
"""Cluster serving, declaratively: apply a spec, watch it converge,
rescale it, drain it.

Builds a two-pod datacenter and hands the control plane a ServiceSpec —
"three ranking replicas, spread across pods, least-outstanding front
end".  The ClusterManager places the rings, wires the health monitors,
and returns a handle; open-loop users submit through the service's
stable virtual endpoint (``manager.endpoint(name)``), which keeps
resolving the live deployment through every re-placement or rescale.  A
`scale(4)` re-declares the replica count mid-run and reconciliation
converges onto it; `drain()` tears everything down.  This is the
paper's production shape (§2.3) in miniature: operators declare, the
management plane operates.

Run:  python examples/cluster_serving.py
"""

from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.sim.units import SEC, US
from repro.workloads import BurstyArrivals, OpenLoopInjector, PoissonArrivals
from repro.workloads.traces import TraceGenerator


def print_status(handle) -> None:
    status = handle.status()
    print(
        f"  {status.service}: {status.ready_replicas}/{status.desired_replicas} "
        f"replicas ready, {status.capacity.occupied_rings}/"
        f"{status.capacity.total_rings} rings occupied "
        f"({status.capacity.utilization:.0%})"
    )
    for ring in status.rings:
        print(
            f"    {ring.name}: health {ring.health:.2f}, "
            f"{ring.completed} completed"
        )


def main() -> None:
    print("Building a 2-pod datacenter (2x8 torus per pod = 2 rings each)...")
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=11
    )

    print("Declaring: 3 ranking replicas, spread placement, "
          "least-outstanding front end...")
    cluster = fabric.deploy_ranking_cluster(
        rings=3,
        placement_policy="spread",
        balancing_policy="least_outstanding",
        model_scale=0.1,
    )
    handle = cluster.handle
    endpoint = fabric.manager().endpoint("bing-ranking")
    print_status(handle)

    generator = TraceGenerator(seed=42)
    pool = [generator.request() for _ in range(48)]
    for request in pool:  # pre-compute functional scores
        cluster.scoring_engine.score(
            request.document, cluster.library[request.document.model_id]
        )

    print("\nPhase 1: steady Poisson load, 60 K docs/s offered...")
    steady = OpenLoopInjector(
        fabric.engine,
        endpoint,
        PoissonArrivals(60_000),
        pool,
        max_queue_depth=256,
        seed_tag="steady",
    )
    started = fabric.engine.now
    stats = fabric.engine.run_until(steady.run(900))
    window = fabric.engine.now - started
    print(
        f"  {stats.completed} scored at {stats.completed * SEC / window:,.0f}/s, "
        f"p50 {stats.stats().p50 / US:.0f} us, p99 {stats.stats().p99 / US:.0f} us, "
        f"{stats.rejected} shed"
    )

    print("\nScaling the declaration to 4 replicas...")
    handle.scale(4)
    print_status(handle)

    print("\nPhase 2: bursty on/off load, 40 K base / 600 K burst docs/s...")
    bursty = OpenLoopInjector(
        fabric.engine,
        endpoint,
        BurstyArrivals(
            base_rate_per_s=40_000,
            burst_rate_per_s=600_000,
            period_s=0.01,
        ),
        pool,
        max_queue_depth=128,
        seed_tag="bursty",
    )
    stats = fabric.engine.run_until(bursty.run(1_200))
    print(
        f"  {stats.offered} offered, {stats.admitted} admitted "
        f"({stats.admission_fraction:.0%}), {stats.rejected} shed by "
        f"queue-depth admission control"
    )
    print(
        f"  completed p99 {stats.stats().p99 / US:.0f} us "
        f"(backpressure keeps the admitted tail bounded)"
    )

    print("\nDraining the service...")
    freed = fabric.manager().drain(handle)
    report = fabric.manager().scheduler.capacity_report()
    print(
        f"  {len(freed)} rings returned to the pool; "
        f"{report.occupied_rings}/{report.total_rings} occupied"
    )
    print("Done.")


if __name__ == "__main__":
    main()
