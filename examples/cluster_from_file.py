#!/usr/bin/env python
"""Operating the cluster from a file: declare, diff, apply, edit, drain.

The same two-pod datacenter as ``cluster_serving.py``, but nobody calls
``apply(spec)`` from Python: the whole cluster lives in the committed
``examples/cluster.json`` — three Bing ranking replicas plus a one-ring
telemetry echo service — and every operation is a document edit pushed
through ``apply_file``:

1. dry-run the committed file against a fresh fabric (the diff shows
   every service as an add, nothing is touched),
2. apply it and watch both services converge,
3. apply it *again* — a no-op, the declarative fixed point,
4. under live open-loop traffic aimed at the stable
   ``manager.endpoint("bing-ranking")`` front door, apply an edited
   copy (ranking scaled 3 -> 4, telemetry-echo deleted) and watch the
   drain free the ring that the scale-up immediately reuses,
5. drain everything by applying an empty document.

Role factories and adapters are code, not data, so the file references
them by name and this script supplies the catalog: the same split the
paper's management plane makes between service declarations and the
bitstream images they instantiate.

Run:  python examples/cluster_from_file.py
      python examples/cluster_from_file.py --check   # parse + dry-run only
"""

import argparse
import json
import pathlib

from repro.cluster import apply_file, diff_cluster, echo_service, load_cluster
from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.sim.units import US
from repro.workloads import OpenLoopInjector, PoissonArrivals
from repro.workloads.traces import TraceGenerator

CLUSTER_FILE = pathlib.Path(__file__).parent / "cluster.json"


def build_catalog(fabric):
    """Name -> code mappings the cluster file references.

    The ranking definition is synthesized once (bitstreams and scoring
    engine shared); the returned scoring engine and library warm the
    request pool exactly as in ``cluster_serving.py``.
    """
    spec, scoring_engine, library = fabric.ranking_spec(model_scale=0.1)
    services = {
        spec.service.name: spec.service,
        "telemetry-echo": echo_service(name="telemetry-echo"),
    }
    adapters = {type(spec.adapter).__name__: spec.adapter}
    return services, adapters, scoring_engine, library


def print_cluster(manager) -> None:
    for name, status in manager.status().items():
        print(
            f"  {name}: {status.ready_replicas}/{status.desired_replicas} "
            f"replicas ready"
        )
    report = manager.scheduler.capacity_report()
    print(
        f"  pool: {report.occupied_rings}/{report.total_rings} rings occupied "
        f"({report.utilization:.0%})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the committed file (parse + dry-run) and exit",
    )
    args = parser.parse_args()

    print("Building a 2-pod datacenter (2x8 torus per pod = 2 rings each)...")
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=11
    )
    manager = fabric.manager()
    services, adapters, scoring_engine, library = build_catalog(fabric)

    print(f"\nDry run of {CLUSTER_FILE.name} against the fresh fabric:")
    desired = load_cluster(CLUSTER_FILE, services, adapters)
    print("  " + diff_cluster(manager, desired).summary().replace("\n", "\n  "))
    if args.check:
        print("Cluster file OK.")
        return

    print("\nApplying...")
    result = apply_file(manager, CLUSTER_FILE, services, adapters)
    print(f"  converged: {result.converged}")
    print_cluster(manager)

    print("\nApplying the same file again (the declarative fixed point):")
    again = apply_file(manager, CLUSTER_FILE, services, adapters)
    print("  " + again.diff.summary().replace("\n", "\n  "))

    generator = TraceGenerator(seed=42)
    pool = [generator.request() for _ in range(48)]
    for request in pool:  # pre-compute functional scores
        scoring_engine.score(
            request.document, library[request.document.model_id]
        )

    print(
        "\nOpen-loop traffic (60 K docs/s) through the stable "
        "endpoint('bing-ranking') front door..."
    )
    traffic = OpenLoopInjector(
        fabric.engine,
        manager.endpoint("bing-ranking"),
        PoissonArrivals(60_000),
        pool,
        max_queue_depth=256,
    )
    done = traffic.run(900)

    # Mid-run, push an *edited* copy of the document: ranking scaled
    # 3 -> 4, telemetry-echo deleted.  The drain frees its ring; the
    # scale-up reuses it in the same apply pass.  Traffic holds the
    # endpoint, not a handle, so nothing needs rewiring.
    edited = json.loads(CLUSTER_FILE.read_text())
    edited["services"] = [
        dict(entry, replicas=4)
        for entry in edited["services"]
        if entry["service"] == "bing-ranking"
    ]
    applied = False
    while not done.triggered:
        fabric.engine.run(until=fabric.engine.now + 1_000 * US)
        if not applied and traffic.stats.completed >= 300:
            applied = True
            print("\nApplying the edited copy (ranking 3 -> 4, echo removed):")
            result = apply_file(manager, edited, services, adapters)
            print("  " + result.diff.summary().replace("\n", "\n  "))
    stats = done.value
    print_cluster(manager)
    print(
        f"  traffic through the edit: {stats.completed} completed, "
        f"{stats.rejected} shed, p99 {stats.stats().p99 / US:.0f} us"
    )

    print("\nApplying an empty document (drain everything):")
    result = apply_file(manager, {"version": 1, "services": []}, services)
    print("  " + result.diff.summary().replace("\n", "\n  "))
    report = manager.scheduler.capacity_report()
    print(
        f"  pool: {report.occupied_rings}/{report.total_rings} rings occupied"
    )
    print("Done.")


if __name__ == "__main__":
    main()
